package vfs

import (
	"testing"
)

func TestTransportErrorsCountedOnUnknownFile(t *testing.T) {
	w := newWorld(t, false)
	tr, err := NewNetTransport(w.net, "client", "server", w.server)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(w.k, tr, LANConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := c.Open("does-not-exist", 1<<20)
	completed := false
	f.Read(0, 4096, func() { completed = true })
	w.k.Run()
	if !completed {
		t.Fatal("read hung on server error")
	}
	if c.TransportErrors() == 0 {
		t.Error("server error not counted")
	}
	if c.LastError() == nil {
		t.Error("LastError not recorded")
	}
}

func TestTransportErrorsCountedOnPartition(t *testing.T) {
	w := newWorld(t, false)
	tr, err := NewNetTransport(w.net, "client", "server", w.server)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(w.k, tr, LANConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.net.SetLinkUp("client", "server", false); err != nil {
		t.Fatal(err)
	}
	f := c.Open("data", 1<<30)
	completed := false
	f.Read(10<<20, 4096, func() { completed = true })
	w.k.Run()
	if !completed {
		t.Fatal("read hung across a partition")
	}
	if c.TransportErrors() == 0 {
		t.Error("partition error not counted")
	}
}

func TestWriteErrorCounted(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, LANConfig())
	if err := w.net.SetLinkUp("client", "server", false); err != nil {
		t.Fatal(err)
	}
	f := c.Open("scratch", 0)
	completed := false
	f.Write(0, 4096, func() { completed = true })
	w.k.Run()
	if !completed {
		t.Fatal("write hung")
	}
	if c.TransportErrors() == 0 {
		t.Error("write error not counted")
	}
}

func TestHealthySessionHasNoErrors(t *testing.T) {
	w := newWorld(t, false)
	tr, _ := NewNetTransport(w.net, "client", "server", w.server)
	c, _ := NewClient(w.k, tr, LANConfig())
	f := c.Open("data", 1<<30)
	for i := int64(0); i < 8; i++ {
		f.Read(i*(1<<20), 64<<10, nil)
	}
	w.k.Run()
	if c.TransportErrors() != 0 {
		t.Errorf("healthy session recorded %d errors: %v", c.TransportErrors(), c.LastError())
	}
}
