package vfs

import (
	"errors"
	"fmt"
	"testing"

	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// scriptedTransport loses, NAKs, or serves RPC attempts per script:
// the first drops attempts never complete, the next naks attempts reply
// ErrUnknownFile, and everything after succeeds after latency.
type scriptedTransport struct {
	k       *sim.Kernel
	drops   int
	naks    int
	latency sim.Duration

	calls int
	times []sim.Time
}

func (t *scriptedTransport) issue(done func(error)) {
	t.calls++
	t.times = append(t.times, t.k.Now())
	switch {
	case t.calls <= t.drops:
		// Lost: no reply ever.
	case t.calls <= t.drops+t.naks:
		t.k.After(t.latency, func() { done(fmt.Errorf("%w: scripted", ErrUnknownFile)) })
	default:
		t.k.After(t.latency, func() { done(nil) })
	}
}

func (t *scriptedTransport) Read(file string, off, size int64, done func(error)) { t.issue(done) }
func (t *scriptedTransport) Write(file string, off, size int64, done func(error)) {
	t.issue(done)
}

func retryClient(t *testing.T, k *sim.Kernel, tr Transport, p retry.Policy) *Client {
	t.Helper()
	cfg := Config{Rsize: 32 << 10, Prefetch: 32 << 10, CacheBytes: 1 << 20, Retry: p}
	c, err := NewClient(k, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetryRecoversFromLostRPCs(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &scriptedTransport{k: k, drops: 2, latency: sim.Millisecond}
	c := retryClient(t, k, tr, retry.Policy{
		MaxAttempts: 4, Timeout: 100 * sim.Millisecond, Backoff: 10 * sim.Millisecond,
	})
	completed := false
	c.Open("data", 1<<20).Read(0, 1024, func() { completed = true })
	k.Run()
	if !completed {
		t.Fatal("read never completed despite retry budget")
	}
	if tr.calls != 3 {
		t.Errorf("attempts = %d, want 3 (2 lost + 1 served)", tr.calls)
	}
	if c.Retries() != 2 {
		t.Errorf("Retries() = %d, want 2", c.Retries())
	}
	if c.TransportErrors() != 0 {
		t.Errorf("TransportErrors() = %d; recovered RPCs must not count as data loss", c.TransportErrors())
	}
	// Reissues are spaced by timeout + doubling backoff.
	if len(tr.times) == 3 {
		gap1 := tr.times[1].Sub(tr.times[0])
		gap2 := tr.times[2].Sub(tr.times[1])
		if gap1 != 110*sim.Millisecond || gap2 != 120*sim.Millisecond {
			t.Errorf("attempt gaps = %v, %v; want timeout+10ms then timeout+20ms", gap1, gap2)
		}
	}
}

func TestRetryExhaustionReportsUnavailable(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &scriptedTransport{k: k, drops: 1 << 30}
	c := retryClient(t, k, tr, retry.Policy{
		MaxAttempts: 3, Timeout: 50 * sim.Millisecond, Backoff: 10 * sim.Millisecond,
	})
	completed := false
	c.Open("data", 1<<20).Read(0, 1024, func() { completed = true })
	k.Run()
	// Soft-mount semantics: the read completes, the error is recorded.
	if !completed {
		t.Fatal("read hung instead of failing soft")
	}
	if tr.calls != 3 {
		t.Errorf("attempts = %d, want 3", tr.calls)
	}
	if c.TransportErrors() != 1 {
		t.Errorf("TransportErrors() = %d, want 1", c.TransportErrors())
	}
	if !errors.Is(c.LastError(), ErrUnavailable) {
		t.Errorf("LastError = %v, want ErrUnavailable wrap", c.LastError())
	}
	if !errors.Is(c.LastError(), ErrTimeout) {
		t.Errorf("LastError = %v, should keep the ErrTimeout cause", c.LastError())
	}
}

func TestRetryDoesNotReissueNAKs(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &scriptedTransport{k: k, naks: 1, latency: sim.Millisecond}
	c := retryClient(t, k, tr, retry.Policy{
		MaxAttempts: 4, Timeout: 100 * sim.Millisecond, Backoff: 10 * sim.Millisecond,
	})
	completed := false
	c.Open("ghost", 1<<20).Read(0, 1024, func() { completed = true })
	k.Run()
	if !completed {
		t.Fatal("read never completed")
	}
	if tr.calls != 1 {
		t.Errorf("attempts = %d; a definitive server NAK must not be retried", tr.calls)
	}
	if c.Retries() != 0 {
		t.Errorf("Retries() = %d, want 0", c.Retries())
	}
	if !errors.Is(c.LastError(), ErrUnknownFile) {
		t.Errorf("LastError = %v, want ErrUnknownFile", c.LastError())
	}
}

func TestZeroRetryPolicyKeepsHistoricalBehavior(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &scriptedTransport{k: k, drops: 1}
	c := retryClient(t, k, tr, retry.Policy{})
	completed := false
	c.Open("data", 1<<20).Read(0, 1024, func() { completed = true })
	_ = k.RunUntil(k.Now().Add(sim.Hour))
	if completed {
		t.Fatal("zero policy must not time out or retry: a lost RPC hangs")
	}
	if tr.calls != 1 {
		t.Errorf("attempts = %d, want exactly 1", tr.calls)
	}
}

func TestRetryPolicyValidation(t *testing.T) {
	k := sim.NewKernel(1)
	bad := Config{Rsize: 16, Prefetch: 16, Retry: retry.Policy{Timeout: -1}}
	if _, err := NewClient(k, nil, bad); err == nil {
		t.Error("negative retry timeout accepted")
	}
}

func TestWriteThroughRetries(t *testing.T) {
	k := sim.NewKernel(1)
	tr := &scriptedTransport{k: k, drops: 1, latency: sim.Millisecond}
	c := retryClient(t, k, tr, retry.Policy{
		MaxAttempts: 2, Timeout: 50 * sim.Millisecond, Backoff: 10 * sim.Millisecond,
	})
	completed := false
	c.Open("data", 1<<20).Write(0, 1024, func() { completed = true })
	k.Run()
	if !completed {
		t.Fatal("write never completed")
	}
	if tr.calls != 2 {
		t.Errorf("attempts = %d, want 2", tr.calls)
	}
	if c.TransportErrors() != 0 {
		t.Errorf("TransportErrors() = %d, want 0 after recovery", c.TransportErrors())
	}
}
