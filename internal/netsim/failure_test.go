package netsim

import (
	"errors"
	"testing"

	"vmgrid/internal/sim"
)

func TestLinkFailureBreaksRoute(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.ConnectLAN("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkUp("a", "b", false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", 1, nil, nil); !errors.Is(err, ErrNoRoute) {
		t.Errorf("send over down link = %v, want ErrNoRoute", err)
	}
	if _, err := n.Latency("a", "b", 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("latency over down link = %v", err)
	}
	// Repair restores connectivity.
	if err := n.SetLinkUp("a", "b", true); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Send("a", "b", 1, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Error("message lost after repair")
	}
}

func TestLinkFailureReroutesAroundDetour(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"a", "b", "r"} {
		n.AddNode(name)
	}
	if err := n.Connect("a", "b", sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "r", 10*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r", "b", 10*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	// Direct path first.
	direct, err := n.Latency("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if direct != sim.Millisecond {
		t.Fatalf("direct latency = %v", direct)
	}
	// Kill the direct link; traffic detours through r.
	if err := n.SetLinkUp("a", "b", false); err != nil {
		t.Fatal(err)
	}
	detour, err := n.Latency("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if detour != 20*sim.Millisecond {
		t.Fatalf("detour latency = %v, want 20ms via r", detour)
	}
	delivered := false
	if err := n.Send("a", "b", 100, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Error("detoured message lost")
	}
}

func TestSetLinkUpErrors(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.SetLinkUp("a", "ghost", false); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.SetLinkUp("a", "b", false); err == nil {
		t.Error("missing link accepted")
	}
}
