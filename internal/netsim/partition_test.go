package netsim

import (
	"errors"
	"testing"

	"vmgrid/internal/sim"
)

// TestPartitionRoundTrip is the fault fabric's core contract: a link
// taken down mid-simulation invalidates cached routes immediately
// (sends fail with ErrNoRoute), and bringing it back restores
// reachability — all driven by scheduled events, not between-run
// reconfiguration.
func TestPartitionRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.ConnectLAN("a", "b"); err != nil {
		t.Fatal(err)
	}

	// Warm the route cache before the partition.
	if err := n.Send("a", "b", 1024, nil, nil); err != nil {
		t.Fatal(err)
	}

	var during, after error
	deliveredAfter := false
	k.After(sim.Second, func() {
		if err := n.SetLinkUp("a", "b", false); err != nil {
			t.Errorf("SetLinkUp(false): %v", err)
		}
		during = n.Send("a", "b", 1024, nil, func(any) {
			t.Error("delivery across a downed link")
		})
	})
	k.After(2*sim.Second, func() {
		if err := n.SetLinkUp("a", "b", true); err != nil {
			t.Errorf("SetLinkUp(true): %v", err)
		}
		after = n.Send("a", "b", 1024, nil, func(any) { deliveredAfter = true })
	})
	k.Run()

	if !errors.Is(during, ErrNoRoute) {
		t.Errorf("send during partition = %v, want ErrNoRoute (stale route cache?)", during)
	}
	if after != nil {
		t.Errorf("send after heal = %v", after)
	}
	if !deliveredAfter {
		t.Error("no delivery after the partition healed")
	}
}

func TestSetNodeUpFailsEveryLink(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"hub", "x", "y"} {
		n.AddNode(name)
	}
	if err := n.ConnectLAN("hub", "x"); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectLAN("hub", "y"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetNodeUp("ghost", false); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.SetNodeUp("hub", false); err != nil {
		t.Fatal(err)
	}
	for _, peer := range []string{"x", "y"} {
		if _, err := n.Latency("hub", peer, 1024); !errors.Is(err, ErrNoRoute) {
			t.Errorf("hub→%s after SetNodeUp(false) = %v, want ErrNoRoute", peer, err)
		}
	}
	// x and y were only connected through the hub.
	if _, err := n.Latency("x", "y", 1024); !errors.Is(err, ErrNoRoute) {
		t.Errorf("x→y via downed hub = %v, want ErrNoRoute", err)
	}
	if err := n.SetNodeUp("hub", true); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"hub", "x"}, {"hub", "y"}, {"x", "y"}} {
		if _, err := n.Latency(pair[0], pair[1], 1024); err != nil {
			t.Errorf("%s→%s after SetNodeUp(true) = %v", pair[0], pair[1], err)
		}
	}
}

// TestMidFlightDropCounted covers the store-and-forward edge: a packet
// already past its first hop when the next link fails is dropped (and
// counted), never delivered and never erroring back to the sender —
// end-to-end recovery belongs to the transport above.
func TestMidFlightDropCounted(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"a", "r1", "r2", "b"} {
		n.AddNode(name)
	}
	// Slow middle hop so the packet is still crossing r1→r2 when the
	// onward r2→b link fails ahead of it.
	if err := n.Connect("a", "r1", sim.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r1", "r2", sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r2", "b", sim.Millisecond, 1e9); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Send("a", "b", 1e6, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	// The packet clears a→r1 quickly, then spends ~1s on r1→r2; cut the
	// route ahead of it while it is on the wire.
	k.After(100*sim.Millisecond, func() {
		if err := n.SetLinkUp("r2", "b", false); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if delivered {
		t.Fatal("packet delivered across a link that failed mid-flight")
	}
	if n.Drops() != 1 {
		t.Errorf("Drops() = %d, want 1", n.Drops())
	}
}

// TestRoutingDeterministicUnderEqualCost: equal-cost paths must break
// ties identically across runs (sorted-neighbor BFS), or seeded
// experiments diverge.
func TestRoutingDeterministicUnderEqualCost(t *testing.T) {
	build := func() (*Network, *sim.Kernel) {
		k := sim.NewKernel(1)
		n := New(k)
		for _, name := range []string{"s", "m1", "m2", "m3", "d"} {
			n.AddNode(name)
		}
		for _, m := range []string{"m1", "m2", "m3"} {
			if err := n.ConnectLAN("s", m); err != nil {
				t.Fatal(err)
			}
			if err := n.ConnectLAN(m, "d"); err != nil {
				t.Fatal(err)
			}
		}
		return n, k
	}
	n1, k1 := build()
	n2, k2 := build()
	var t1, t2 sim.Time
	if err := n1.Send("s", "d", 1e6, nil, func(any) { t1 = k1.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := n2.Send("s", "d", 1e6, nil, func(any) { t2 = k2.Now() }); err != nil {
		t.Fatal(err)
	}
	k1.Run()
	k2.Run()
	if t1 != t2 || t1 == 0 {
		t.Errorf("equal-cost delivery times differ: %v vs %v", t1, t2)
	}
}
