package netsim

import (
	"errors"
	"testing"
	"testing/quick"

	"vmgrid/internal/sim"
)

func TestSendSingleHopTiming(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Connect("a", "b", 10*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	var at sim.Time = -1
	if err := n.Send("a", "b", 1e6, "hi", func(p any) {
		if p != "hi" {
			t.Errorf("payload = %v", p)
		}
		at = k.Now()
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := sim.Time(sim.Second + 10*sim.Millisecond) // 1 MB at 1 MB/s + latency
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSendToSelfIsImmediate(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	delivered := false
	if err := n.Send("a", "a", 1e9, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered || k.Now() != 0 {
		t.Errorf("self-send delivered=%v at %v", delivered, k.Now())
	}
}

func TestSendErrors(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b") // no link
	if err := n.Send("missing", "b", 1, nil, nil); err == nil {
		t.Error("unknown src accepted")
	}
	if err := n.Send("a", "missing", 1, nil, nil); err == nil {
		t.Error("unknown dst accepted")
	}
	err := n.Send("a", "b", 1, nil, nil)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("disconnected send = %v, want ErrNoRoute", err)
	}
}

func TestMultiHopRouting(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"a", "r", "b"} {
		n.AddNode(name)
	}
	if err := n.Connect("a", "r", 5*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("r", "b", 5*sim.Millisecond, 1e6); err != nil {
		t.Fatal(err)
	}
	var at sim.Time = -1
	if err := n.Send("a", "b", 1e5, nil, func(any) { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Two hops: each 100 ms transmission + 5 ms latency.
	want := sim.Time(2 * (100*sim.Millisecond + 5*sim.Millisecond))
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestLatencyMatchesSend(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	if err := n.BuildLAN("a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	n.AddNode("far")
	if err := n.ConnectWAN("c", "far"); err != nil {
		t.Fatal(err)
	}
	lat, err := n.Latency("a", "far", 1500)
	if err != nil {
		t.Fatal(err)
	}
	var at sim.Time = -1
	if err := n.Send("a", "far", 1500, nil, func(any) { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if at != sim.Time(lat) {
		t.Fatalf("Send delivered at %v, Latency predicts %v", at, lat)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Connect("a", "b", 0, 1e6); err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	_ = n.Send("a", "b", 1e6, nil, func(any) { first = k.Now() })
	_ = n.Send("a", "b", 1e6, nil, func(any) { second = k.Now() })
	k.Run()
	if first != sim.Time(sim.Second) || second != sim.Time(2*sim.Second) {
		t.Fatalf("deliveries at %v, %v; want 1s, 2s (FIFO wire)", first, second)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Connect("a", "b", 0, 1e6); err != nil {
		t.Fatal(err)
	}
	var ab, ba sim.Time
	_ = n.Send("a", "b", 1e6, nil, func(any) { ab = k.Now() })
	_ = n.Send("b", "a", 1e6, nil, func(any) { ba = k.Now() })
	k.Run()
	if ab != sim.Time(sim.Second) || ba != sim.Time(sim.Second) {
		t.Fatalf("full-duplex transfers at %v/%v, want 1s each", ab, ba)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	a1 := n.AddNode("a")
	a2 := n.AddNode("a")
	if a1 != a2 {
		t.Error("AddNode created a duplicate")
	}
	if n.Nodes() != 1 {
		t.Errorf("Nodes() = %d", n.Nodes())
	}
}

func TestBuildLANFullMesh(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	if err := n.BuildLAN("a", "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if got := n.Node(name).Degree(); got != 3 {
			t.Errorf("node %s degree = %d, want 3", name, got)
		}
	}
}

// Property: in an arbitrary connected chain, delivery time equals the
// Latency prediction for any message size.
func TestChainLatencyProperty(t *testing.T) {
	prop := func(hopsRaw, sizeRaw uint8) bool {
		hops := int(hopsRaw%5) + 1
		size := int64(sizeRaw) * 100
		k := sim.NewKernel(4)
		n := New(k)
		names := make([]string, hops+1)
		for i := range names {
			names[i] = string(rune('a' + i))
			n.AddNode(names[i])
		}
		for i := 0; i < hops; i++ {
			if err := n.Connect(names[i], names[i+1], sim.Millisecond, 1e6); err != nil {
				return false
			}
		}
		want, err := n.Latency(names[0], names[hops], size)
		if err != nil {
			return false
		}
		var at sim.Time = -1
		if err := n.Send(names[0], names[hops], size, nil, func(any) { at = k.Now() }); err != nil {
			return false
		}
		k.Run()
		return at == sim.Time(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopologyChangeRecomputesRoutes(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Send("a", "b", 1, nil, nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("expected no route, got %v", err)
	}
	if err := n.ConnectLAN("a", "b"); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Send("a", "b", 1, nil, func(any) { delivered = true }); err != nil {
		t.Fatalf("send after connect: %v", err)
	}
	k.Run()
	if !delivered {
		t.Error("message not delivered after topology change")
	}
}
