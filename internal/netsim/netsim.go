// Package netsim models the network joining grid sites: named nodes
// connected by links with latency and bandwidth. Messages queue FIFO per
// link direction, so concurrent transfers contend for bandwidth the way
// they do on a real wire. Routing is shortest-path by hop count,
// recomputed lazily when the topology changes.
//
// Two canonical topologies bracket the paper's testbed: a switched
// 100 Mbit LAN (Table 2's "within a LAN" startup measurements) and the
// Northwestern–Florida WAN path used by the PVFS rows of Table 1.
package netsim

import (
	"fmt"
	"sort"

	"vmgrid/internal/sim"
)

// Default link parameters for the paper-era testbed.
const (
	// LANLatency is the one-way latency of a switched Fast Ethernet hop.
	LANLatency = 150 * sim.Microsecond
	// LANBandwidthBps is Fast Ethernet line rate in bytes/second.
	LANBandwidthBps = 100e6 / 8
	// WANLatency is the one-way latency between the two university
	// sites (~28 ms RTT, typical Abilene-era cross-country path).
	WANLatency = 14 * sim.Millisecond
	// WANBandwidthBps is the sustained wide-area TCP throughput the
	// paper's transfers would have seen (~5 MB/s).
	WANBandwidthBps = 5e6
)

// Network is a set of nodes and links sharing one simulation kernel.
type Network struct {
	k      *sim.Kernel
	nodes  map[string]*Node
	routes map[string]map[string]string // routes[src][dst] = next hop
	dirty  bool
	drops  uint64
}

// New creates an empty network.
func New(k *sim.Kernel) *Network {
	return &Network{
		k:     k,
		nodes: make(map[string]*Node),
	}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// AddNode creates a node. Adding an existing name returns the existing
// node, so topology builders can be idempotent.
func (n *Network) AddNode(name string) *Node {
	if node, ok := n.nodes[name]; ok {
		return node
	}
	node := &Node{net: n, name: name, links: make(map[string]*link)}
	n.nodes[name] = node
	n.dirty = true
	return node
}

// Connect joins two nodes with a bidirectional link. Each direction has
// its own transmission queue.
func (n *Network) Connect(a, b string, latency sim.Duration, bandwidthBps float64) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("netsim: connect %q-%q: unknown node", a, b)
	}
	if bandwidthBps <= 0 {
		return fmt.Errorf("netsim: connect %q-%q: bandwidth %v", a, b, bandwidthBps)
	}
	na.links[b] = &link{net: n, to: nb, latency: latency, bwBps: bandwidthBps}
	nb.links[a] = &link{net: n, to: na, latency: latency, bwBps: bandwidthBps}
	n.dirty = true
	return nil
}

// ConnectLAN joins two nodes with default LAN parameters.
func (n *Network) ConnectLAN(a, b string) error {
	return n.Connect(a, b, LANLatency, LANBandwidthBps)
}

// ConnectWAN joins two nodes with default WAN parameters.
func (n *Network) ConnectWAN(a, b string) error {
	return n.Connect(a, b, WANLatency, WANBandwidthBps)
}

// SetLinkUp marks the a<->b link up or down (failure injection). Routing
// recomputes around down links immediately: the cached next-hop table is
// invalidated, so partitions take effect mid-simulation. Messages already
// queued on the link still cross it (store-and-forward), but if their
// onward route vanished by arrival time they are dropped and counted in
// Drops.
func (n *Network) SetLinkUp(a, b string, up bool) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("netsim: set link %q-%q: unknown node", a, b)
	}
	la, lb := na.links[b], nb.links[a]
	if la == nil || lb == nil {
		return fmt.Errorf("netsim: set link %q-%q: no such link", a, b)
	}
	la.down = !up
	lb.down = !up
	n.dirty = true
	return nil
}

// SetNodeUp fails (or restores) every link attached to a node at once —
// the network face of a fail-stop node crash. Restoring brings all the
// node's links up, including any that were downed individually before.
func (n *Network) SetNodeUp(name string, up bool) error {
	nd := n.nodes[name]
	if nd == nil {
		return fmt.Errorf("netsim: set node %q: unknown node", name)
	}
	for peer, l := range nd.links {
		l.down = !up
		if back := n.nodes[peer].links[name]; back != nil {
			back.down = !up
		}
	}
	n.dirty = true
	return nil
}

// Drops returns messages discarded mid-path because their route
// disappeared while they were in flight.
func (n *Network) Drops() uint64 { return n.drops }

// BuildLAN creates the named nodes (if needed) and joins them through an
// implicit switch: every pair is one LAN hop apart.
func (n *Network) BuildLAN(names ...string) error {
	for _, name := range names {
		n.AddNode(name)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if err := n.ConnectLAN(a, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrNoRoute is wrapped by Send when the destination is unreachable.
var ErrNoRoute = fmt.Errorf("netsim: no route")

// Send transmits size bytes from src to dst and invokes deliver with the
// payload when the last byte arrives. Multi-hop paths pay each hop's
// latency and queue for each hop's bandwidth.
func (n *Network) Send(src, dst string, size int64, payload any, deliver func(payload any)) error {
	from := n.nodes[src]
	if from == nil {
		return fmt.Errorf("netsim: send from unknown node %q", src)
	}
	if n.nodes[dst] == nil {
		return fmt.Errorf("netsim: send to unknown node %q", dst)
	}
	if size < 0 {
		size = 0
	}
	return n.forward(from, dst, size, payload, deliver)
}

func (n *Network) forward(from *Node, dst string, size int64, payload any, deliver func(any)) error {
	if from.name == dst {
		n.k.After(0, func() {
			if deliver != nil {
				deliver(payload)
			}
		})
		return nil
	}
	n.ensureRoutes()
	hop, ok := n.routes[from.name][dst]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrNoRoute, from.name, dst)
	}
	l := from.links[hop]
	l.transmit(size, func() {
		// The route is re-consulted at every store-and-forward hop. If a
		// link failed while the message was on the wire, the onward route
		// may be gone by arrival time: the message is dropped, exactly as
		// a router with no route would drop it. End-to-end recovery is the
		// caller's job (vfs per-op timeouts and retries).
		if err := n.forward(l.to, dst, size, payload, deliver); err != nil {
			n.drops++
		}
	})
	return nil
}

// Latency returns the unloaded one-way latency from src to dst for a
// message of the given size, or an error if unreachable. Useful for
// analytic assertions.
func (n *Network) Latency(src, dst string, size int64) (sim.Duration, error) {
	if src == dst {
		return 0, nil
	}
	n.ensureRoutes()
	var total sim.Duration
	cur := n.nodes[src]
	if cur == nil || n.nodes[dst] == nil {
		return 0, fmt.Errorf("netsim: latency: unknown node")
	}
	for cur.name != dst {
		hop, ok := n.routes[cur.name][dst]
		if !ok {
			return 0, fmt.Errorf("%w: %s -> %s", ErrNoRoute, cur.name, dst)
		}
		l := cur.links[hop]
		total += l.latency + sim.DurationOf(float64(size)/l.bwBps)
		cur = l.to
	}
	return total, nil
}

// ensureRoutes rebuilds the all-pairs next-hop table (BFS per node) if
// the topology changed.
func (n *Network) ensureRoutes() {
	if !n.dirty {
		return
	}
	n.routes = make(map[string]map[string]string, len(n.nodes))
	// Neighbors expand in sorted name order so equal-cost ties resolve
	// identically on every rebuild — fault injection recomputes routes
	// mid-run, and route choice must not depend on map iteration order.
	for name, node := range n.nodes {
		next := make(map[string]string)
		// BFS from node; record first hop toward every destination.
		type qe struct {
			at    *Node
			first string
		}
		visited := map[string]bool{name: true}
		var queue []qe
		for _, peer := range node.peers() {
			if node.links[peer].down || visited[peer] {
				continue
			}
			visited[peer] = true
			next[peer] = peer
			queue = append(queue, qe{at: n.nodes[peer], first: peer})
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, peer := range cur.at.peers() {
				if cur.at.links[peer].down || visited[peer] {
					continue
				}
				visited[peer] = true
				next[peer] = cur.first
				queue = append(queue, qe{at: n.nodes[peer], first: cur.first})
			}
		}
		n.routes[name] = next
	}
	n.dirty = false
}

// Node is a network attachment point (one per simulated machine).
type Node struct {
	net   *Network
	name  string
	links map[string]*link
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// Degree returns the number of attached links.
func (nd *Node) Degree() int { return len(nd.links) }

// peers returns the neighbor names in sorted order.
func (nd *Node) peers() []string {
	out := make([]string, 0, len(nd.links))
	for peer := range nd.links {
		out = append(out, peer)
	}
	sort.Strings(out)
	return out
}

// link is one direction of a connection. Transmissions serialize: the
// wire carries one message at a time at full bandwidth.
type link struct {
	net     *Network
	to      *Node
	latency sim.Duration
	bwBps   float64
	down    bool

	busyUntil sim.Time
	bytes     uint64
}

// transmit queues size bytes on the link and calls done when the last
// byte has arrived at the far end (store-and-forward).
func (l *link) transmit(size int64, done func()) {
	k := l.net.k
	start := k.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txEnd := start.Add(sim.DurationOf(float64(size) / l.bwBps))
	l.busyUntil = txEnd
	l.bytes += uint64(size)
	k.At(txEnd.Add(l.latency), done)
}
