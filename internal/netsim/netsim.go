// Package netsim models the network joining grid sites: named nodes
// connected by links with latency and bandwidth. Messages queue FIFO per
// link direction, so concurrent transfers contend for bandwidth the way
// they do on a real wire. Routing is shortest-path by hop count,
// computed lazily per source node and invalidated incrementally when the
// topology changes: a link failure only discards the cached routes of
// sources whose shortest-path tree actually used that link.
//
// Two canonical topologies bracket the paper's testbed: a switched
// 100 Mbit LAN (Table 2's "within a LAN" startup measurements) and the
// Northwestern–Florida WAN path used by the PVFS rows of Table 1.
package netsim

import (
	"fmt"
	"sort"

	"vmgrid/internal/sim"
)

// Default link parameters for the paper-era testbed.
const (
	// LANLatency is the one-way latency of a switched Fast Ethernet hop.
	LANLatency = 150 * sim.Microsecond
	// LANBandwidthBps is Fast Ethernet line rate in bytes/second.
	LANBandwidthBps = 100e6 / 8
	// WANLatency is the one-way latency between the two university
	// sites (~28 ms RTT, typical Abilene-era cross-country path).
	WANLatency = 14 * sim.Millisecond
	// WANBandwidthBps is the sustained wide-area TCP throughput the
	// paper's transfers would have seen (~5 MB/s).
	WANBandwidthBps = 5e6
)

// Network is a set of nodes and links sharing one simulation kernel.
type Network struct {
	k             *sim.Kernel
	nodes         map[string]*Node
	routes        map[string]*srcRoutes
	routeComputes uint64
	drops         uint64
	bytesSent     uint64

	freeMsgs *message
}

// srcRoutes is one source node's shortest-path state: the next-hop
// table plus the BFS distances and tree parents that incremental
// invalidation consults. A cached entry is only kept across a topology
// change when a fresh BFS would provably reproduce it bit for bit.
type srcRoutes struct {
	next   map[string]string // dst -> first hop
	dist   map[string]int    // node -> hop count (absent = unreachable)
	parent map[string]string // node -> BFS tree predecessor
}

// New creates an empty network.
func New(k *sim.Kernel) *Network {
	return &Network{
		k:      k,
		nodes:  make(map[string]*Node),
		routes: make(map[string]*srcRoutes),
	}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// AddNode creates a node. Adding an existing name returns the existing
// node, so topology builders can be idempotent. A fresh node has no
// links, so existing cached routes stay valid as-is.
func (n *Network) AddNode(name string) *Node {
	if node, ok := n.nodes[name]; ok {
		return node
	}
	node := &Node{net: n, name: name, links: make(map[string]*link, 4)}
	n.nodes[name] = node
	return node
}

// Connect joins two nodes with a bidirectional link. Each direction has
// its own transmission queue.
func (n *Network) Connect(a, b string, latency sim.Duration, bandwidthBps float64) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("netsim: connect %q-%q: unknown node", a, b)
	}
	if bandwidthBps <= 0 {
		return fmt.Errorf("netsim: connect %q-%q: bandwidth %v", a, b, bandwidthBps)
	}
	na.links[b] = &link{net: n, to: nb, latency: latency, bwBps: bandwidthBps}
	nb.links[a] = &link{net: n, to: na, latency: latency, bwBps: bandwidthBps}
	na.sortedPeers = nil
	nb.sortedPeers = nil
	n.invalidateEdgeUp(a, b)
	return nil
}

// ConnectLAN joins two nodes with default LAN parameters.
func (n *Network) ConnectLAN(a, b string) error {
	return n.Connect(a, b, LANLatency, LANBandwidthBps)
}

// ConnectWAN joins two nodes with default WAN parameters.
func (n *Network) ConnectWAN(a, b string) error {
	return n.Connect(a, b, WANLatency, WANBandwidthBps)
}

// SetLinkUp marks the a<->b link up or down (failure injection). Routing
// recomputes around down links immediately: the affected next-hop caches
// are invalidated, so partitions take effect mid-simulation. Messages
// already queued on the link still cross it (store-and-forward), but if
// their onward route vanished by arrival time they are dropped and
// counted in Drops. Only sources whose routing actually depends on the
// flapped link pay a recompute; see RouteComputes.
func (n *Network) SetLinkUp(a, b string, up bool) error {
	na, nb := n.nodes[a], n.nodes[b]
	if na == nil || nb == nil {
		return fmt.Errorf("netsim: set link %q-%q: unknown node", a, b)
	}
	la, lb := na.links[b], nb.links[a]
	if la == nil || lb == nil {
		return fmt.Errorf("netsim: set link %q-%q: no such link", a, b)
	}
	la.down = !up
	lb.down = !up
	if up {
		n.invalidateEdgeUp(a, b)
	} else {
		n.invalidateEdgeDown(a, b)
	}
	return nil
}

// SetLinkDirUp marks only the from->to direction of a link up or down —
// the asymmetric failure shape (half-duplex breakage, unidirectional
// firewall drops) where from's traffic toward to is lost while to can
// still reach from. Route invalidation is direction-aware: a one-way
// failure only discards sources whose BFS tree traversed that exact
// directed edge.
func (n *Network) SetLinkDirUp(from, to string, up bool) error {
	nf := n.nodes[from]
	if nf == nil || n.nodes[to] == nil {
		return fmt.Errorf("netsim: set link dir %q->%q: unknown node", from, to)
	}
	l := nf.links[to]
	if l == nil {
		return fmt.Errorf("netsim: set link dir %q->%q: no such link", from, to)
	}
	l.down = !up
	if up {
		n.invalidateDirEdgeUp(from, to)
	} else {
		n.invalidateDirEdgeDown(from, to)
	}
	return nil
}

// SetNodeDirUp fails (or restores) one direction of every link attached
// to a node: outbound=true silences the node (it still hears the grid
// but nothing it sends arrives), outbound=false deafens it (it can send
// but receives nothing). This is the node-level asymmetric partition —
// the classic split-brain trigger, where a host keeps serving while the
// rest of the grid believes it dead.
func (n *Network) SetNodeDirUp(name string, outbound, up bool) error {
	nd := n.nodes[name]
	if nd == nil {
		return fmt.Errorf("netsim: set node dir %q: unknown node", name)
	}
	for peer := range nd.links {
		var from, to string
		if outbound {
			nd.links[peer].down = !up
			from, to = name, peer
		} else {
			if back := n.nodes[peer].links[name]; back != nil {
				back.down = !up
			}
			from, to = peer, name
		}
		if up {
			n.invalidateDirEdgeUp(from, to)
		} else {
			n.invalidateDirEdgeDown(from, to)
		}
	}
	return nil
}

// SetNodeUp fails (or restores) every link attached to a node at once —
// the network face of a fail-stop node crash. Restoring brings all the
// node's links up, including any that were downed individually before.
func (n *Network) SetNodeUp(name string, up bool) error {
	nd := n.nodes[name]
	if nd == nil {
		return fmt.Errorf("netsim: set node %q: unknown node", name)
	}
	for peer, l := range nd.links {
		l.down = !up
		if back := n.nodes[peer].links[name]; back != nil {
			back.down = !up
		}
	}
	if up {
		n.invalidateNodeUp(nd)
	} else {
		n.invalidateNodeDown(name)
	}
	return nil
}

// invalidateEdgeDown discards cached routes of every source whose BFS
// tree crossed the a<->b edge. For any other source the edge was only
// ever examined after both endpoints were visited, so a fresh BFS
// without it walks the identical traversal.
func (n *Network) invalidateEdgeDown(a, b string) {
	for src, r := range n.routes {
		if r.parent[a] == b || r.parent[b] == a {
			delete(n.routes, src)
		}
	}
}

// invalidateEdgeUp discards cached routes that a new (or restored)
// a<->b edge could change. A source keeps its cache only when the fresh
// BFS provably matches: either both endpoints are unreachable from it
// (the edge lives entirely outside its component), or both sit at the
// same BFS depth (each end is already visited before the other's
// adjacency scan reaches the new edge, so the traversal is unchanged).
func (n *Network) invalidateEdgeUp(a, b string) {
	for src, r := range n.routes {
		da, oka := r.dist[a]
		db, okb := r.dist[b]
		if !oka && !okb {
			continue
		}
		if oka && okb && da == db {
			continue
		}
		delete(n.routes, src)
	}
}

// invalidateDirEdgeDown is the one-direction refinement of
// invalidateEdgeDown: a failed from->to direction only affects sources
// whose BFS tree discovered to through from. Trees that crossed the
// link the other way (parent[from] == to) traversed the still-healthy
// to->from direction and stay valid.
func (n *Network) invalidateDirEdgeDown(from, to string) {
	for src, r := range n.routes {
		if r.parent[to] == from {
			delete(n.routes, src)
		}
	}
}

// invalidateDirEdgeUp keeps a source's cache across a restored from->to
// direction only when a fresh BFS provably reproduces it: either from
// is unreachable (its adjacency is never scanned), or to was already
// discovered at a depth ≤ from's (so the scan of from skips the edge).
// A to exactly one hop deeper than from could tie with the edge's new
// offer, and tie-breaking depends on scan order — invalidate.
func (n *Network) invalidateDirEdgeUp(from, to string) {
	for src, r := range n.routes {
		df, okf := r.dist[from]
		if !okf {
			continue
		}
		if dt, okt := r.dist[to]; okt && dt <= df {
			continue
		}
		delete(n.routes, src)
	}
}

// invalidateNodeDown handles a node crash: any source that could reach
// the node loses its cache (the node and possibly more becomes
// unreachable); sources that already could not reach it are untouched,
// because every link of an unreachable node connects unreachable nodes.
func (n *Network) invalidateNodeDown(name string) {
	for src, r := range n.routes {
		if _, ok := r.dist[name]; ok {
			delete(n.routes, src)
		}
	}
}

// invalidateNodeUp applies the edge-up rule across every restored link.
func (n *Network) invalidateNodeUp(nd *Node) {
	for src, r := range n.routes {
		dn, okn := r.dist[nd.name]
		keep := true
		for peer := range nd.links {
			dp, okp := r.dist[peer]
			if !okn && !okp {
				continue
			}
			if okn && okp && dn == dp {
				continue
			}
			keep = false
			break
		}
		if !keep {
			delete(n.routes, src)
		}
	}
}

// Drops returns messages discarded mid-path because their route
// disappeared while they were in flight.
func (n *Network) Drops() uint64 { return n.drops }

// BytesSent returns total payload bytes handed to Send for remote
// delivery (local src==dst loopback excluded) — the bytes-on-wire
// measure the staging experiments compare against full-copy baselines.
func (n *Network) BytesSent() uint64 { return n.bytesSent }

// RouteComputes returns how many per-source BFS computations have run.
// Fault-injection tests assert on this: flapping a link must not
// recompute routes for sources whose paths never touched it.
func (n *Network) RouteComputes() uint64 { return n.routeComputes }

// BuildLAN creates the named nodes (if needed) and joins them through an
// implicit switch: every pair is one LAN hop apart.
func (n *Network) BuildLAN(names ...string) error {
	for _, name := range names {
		n.AddNode(name)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if err := n.ConnectLAN(a, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// ErrNoRoute is wrapped by Send when the destination is unreachable.
var ErrNoRoute = fmt.Errorf("netsim: no route")

// message is one in-flight transfer, pooled on the network freelist so
// multi-hop forwarding schedules no per-hop closures: the hop callback
// is bound once when the struct is first allocated.
type message struct {
	n       *Network
	at      *Node // node the message is currently heading to
	dst     string
	size    int64
	payload any
	deliver func(any)

	hopFn     func() // bound to hop: arrival at the next store-and-forward point
	deliverFn func() // bound to finalDeliver: the zero-delay local delivery event
	nextFree  *message
}

func (n *Network) getMsg() *message {
	m := n.freeMsgs
	if m == nil {
		m = &message{n: n}
		m.hopFn = m.hop
		m.deliverFn = m.finalDeliver
		return m
	}
	n.freeMsgs = m.nextFree
	m.nextFree = nil
	return m
}

func (n *Network) putMsg(m *message) {
	m.at = nil
	m.dst = ""
	m.size = 0
	m.payload = nil
	m.deliver = nil
	m.nextFree = n.freeMsgs
	n.freeMsgs = m
}

// hop runs when the message finishes crossing a link and lands at m.at.
func (m *message) hop() {
	n := m.n
	if m.at.name == m.dst {
		n.k.After(0, m.deliverFn)
		return
	}
	// The route is re-consulted at every store-and-forward hop. If a
	// link failed while the message was on the wire, the onward route
	// may be gone by arrival time: the message is dropped, exactly as a
	// router with no route would drop it. End-to-end recovery is the
	// caller's job (vfs per-op timeouts and retries).
	hop, ok := n.routesFor(m.at.name).next[m.dst]
	if !ok {
		n.drops++
		n.putMsg(m)
		return
	}
	l := m.at.links[hop]
	m.at = l.to
	l.transmit(m.size, m.hopFn)
}

func (m *message) finalDeliver() {
	deliver, payload := m.deliver, m.payload
	m.n.putMsg(m)
	if deliver != nil {
		deliver(payload)
	}
}

// Send transmits size bytes from src to dst and invokes deliver with the
// payload when the last byte arrives. Multi-hop paths pay each hop's
// latency and queue for each hop's bandwidth.
func (n *Network) Send(src, dst string, size int64, payload any, deliver func(payload any)) error {
	from := n.nodes[src]
	if from == nil {
		return fmt.Errorf("netsim: send from unknown node %q", src)
	}
	if n.nodes[dst] == nil {
		return fmt.Errorf("netsim: send to unknown node %q", dst)
	}
	if size < 0 {
		size = 0
	}
	m := n.getMsg()
	m.dst = dst
	m.size = size
	m.payload = payload
	m.deliver = deliver
	if src == dst {
		n.k.After(0, m.deliverFn)
		return nil
	}
	hop, ok := n.routesFor(src).next[dst]
	if !ok {
		n.putMsg(m)
		return fmt.Errorf("%w: %s -> %s", ErrNoRoute, src, dst)
	}
	n.bytesSent += uint64(size)
	l := from.links[hop]
	m.at = l.to
	l.transmit(size, m.hopFn)
	return nil
}

// Latency returns the unloaded one-way latency from src to dst for a
// message of the given size, or an error if unreachable. Useful for
// analytic assertions.
func (n *Network) Latency(src, dst string, size int64) (sim.Duration, error) {
	if src == dst {
		return 0, nil
	}
	cur := n.nodes[src]
	if cur == nil || n.nodes[dst] == nil {
		return 0, fmt.Errorf("netsim: latency: unknown node")
	}
	var total sim.Duration
	for cur.name != dst {
		hop, ok := n.routesFor(cur.name).next[dst]
		if !ok {
			return 0, fmt.Errorf("%w: %s -> %s", ErrNoRoute, cur.name, dst)
		}
		l := cur.links[hop]
		total += l.latency + sim.DurationOf(float64(size)/l.bwBps)
		cur = l.to
	}
	return total, nil
}

// routesFor returns src's next-hop table, running one BFS if the cache
// has no valid entry. Neighbors expand in sorted name order so
// equal-cost ties resolve identically on every rebuild — fault
// injection recomputes routes mid-run, and route choice must not depend
// on map iteration order.
func (n *Network) routesFor(src string) *srcRoutes {
	if r, ok := n.routes[src]; ok {
		return r
	}
	n.routeComputes++
	node := n.nodes[src]
	r := &srcRoutes{
		next:   make(map[string]string),
		dist:   map[string]int{src: 0},
		parent: make(map[string]string),
	}
	// BFS from src; record first hop, depth, and tree parent for every
	// reachable destination.
	type qe struct {
		at    *Node
		first string
		depth int
	}
	var queue []qe
	for _, peer := range node.peers() {
		if node.links[peer].down {
			continue
		}
		r.next[peer] = peer
		r.dist[peer] = 1
		r.parent[peer] = src
		queue = append(queue, qe{at: n.nodes[peer], first: peer, depth: 1})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, peer := range cur.at.peers() {
			if cur.at.links[peer].down {
				continue
			}
			if _, seen := r.dist[peer]; seen {
				continue
			}
			r.next[peer] = cur.first
			r.dist[peer] = cur.depth + 1
			r.parent[peer] = cur.at.name
			queue = append(queue, qe{at: n.nodes[peer], first: cur.first, depth: cur.depth + 1})
		}
	}
	n.routes[src] = r
	return r
}

// Node is a network attachment point (one per simulated machine).
type Node struct {
	net   *Network
	name  string
	links map[string]*link

	sortedPeers []string // cached sorted neighbor names; nil = rebuild
}

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// Degree returns the number of attached links.
func (nd *Node) Degree() int { return len(nd.links) }

// peers returns the neighbor names in sorted order. The slice is cached
// and invalidated when a link is attached.
func (nd *Node) peers() []string {
	if nd.sortedPeers == nil && len(nd.links) > 0 {
		out := make([]string, 0, len(nd.links))
		for peer := range nd.links {
			out = append(out, peer)
		}
		sort.Strings(out)
		nd.sortedPeers = out
	}
	return nd.sortedPeers
}

// link is one direction of a connection. Transmissions serialize: the
// wire carries one message at a time at full bandwidth.
type link struct {
	net     *Network
	to      *Node
	latency sim.Duration
	bwBps   float64
	down    bool

	busyUntil sim.Time
	bytes     uint64
}

// transmit queues size bytes on the link and calls done when the last
// byte has arrived at the far end (store-and-forward).
func (l *link) transmit(size int64, done func()) {
	k := l.net.k
	start := k.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txEnd := start.Add(sim.DurationOf(float64(size) / l.bwBps))
	l.busyUntil = txEnd
	l.bytes += uint64(size)
	k.At(txEnd.Add(l.latency), done)
}
