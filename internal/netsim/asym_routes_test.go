package netsim

import (
	"errors"
	"testing"

	"vmgrid/internal/sim"
)

// TestOneWayLinkFlapSkipsUnaffectedRoutes: failing only the c->d
// direction must invalidate exactly the sources whose BFS tree
// traversed that directed edge. On the square that is c alone — a and
// b reach d through a, and d's own tree crosses the link the other way
// (d->c), which stays healthy.
func TestOneWayLinkFlapSkipsUnaffectedRoutes(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	primed := n.RouteComputes()
	if primed != 4 {
		t.Fatalf("RouteComputes = %d after priming 4 sources, want 4", primed)
	}

	if err := n.SetLinkDirUp("c", "d", false); err != nil {
		t.Fatal(err)
	}

	// Every source except c keeps its table — including d, whose direct
	// d->c route uses the untouched reverse direction.
	for _, pair := range [][2]string{{"a", "c"}, {"b", "d"}, {"d", "c"}, {"d", "a"}} {
		delivered := false
		if err := n.Send(pair[0], pair[1], 1<<10, nil, func(any) { delivered = true }); err != nil {
			t.Fatalf("%s->%s: %v", pair[0], pair[1], err)
		}
		k.Run()
		if !delivered {
			t.Fatalf("%s->%s not delivered after one-way flap", pair[0], pair[1])
		}
	}
	if got := n.RouteComputes(); got != primed {
		t.Errorf("RouteComputes = %d after unaffected sends, want %d (no recompute)", got, primed)
	}

	// c recomputes once and routes the long way around (c->b->a->d).
	delivered := false
	if err := n.Send("c", "d", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatalf("c->d: %v", err)
	}
	k.Run()
	if !delivered {
		t.Fatal("c->d not delivered around the dead direction")
	}
	if got := n.RouteComputes(); got != primed+1 {
		t.Errorf("RouteComputes = %d after c resent, want %d", got, primed+1)
	}

	// The failure is visibly asymmetric: c->d pays three hops, d->c one.
	lcd, err := n.Latency("c", "d", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	ldc, err := n.Latency("d", "c", 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if lcd != 3*ldc {
		t.Errorf("latency c->d %v, d->c %v: want exactly 3x asymmetry", lcd, ldc)
	}

	// Correctness cross-check: every pair matches a fresh network built
	// directly on the degraded (directed) topology.
	fresh := square(t, sim.NewKernel(1))
	if err := fresh.SetLinkDirUp("c", "d", false); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, dst := range []string{"a", "b", "c", "d"} {
			if src == dst {
				continue
			}
			got, err1 := n.Latency(src, dst, 1<<10)
			want, err2 := fresh.Latency(src, dst, 1<<10)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s->%s: %v / %v", src, dst, err1, err2)
			}
			if got != want {
				t.Errorf("%s->%s latency %v after one-way flap, fresh topology gives %v", src, dst, got, want)
			}
		}
	}
}

// TestOneWayRestoreMatchesFreshSquare: healing the direction restores
// the original routes regardless of which caches survived the outage.
func TestOneWayRestoreMatchesFreshSquare(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	if err := n.SetLinkDirUp("c", "d", false); err != nil {
		t.Fatal(err)
	}
	// Recompute c against the degraded topology.
	if _, err := n.Latency("c", "d", 1<<10); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkDirUp("c", "d", true); err != nil {
		t.Fatal(err)
	}

	ref := square(t, sim.NewKernel(1))
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, dst := range []string{"a", "b", "c", "d"} {
			if src == dst {
				continue
			}
			got, _ := n.Latency(src, dst, 1<<10)
			want, _ := ref.Latency(src, dst, 1<<10)
			if got != want {
				t.Errorf("%s->%s latency %v after restore, want %v", src, dst, got, want)
			}
		}
	}
}

// TestNodeOneWayMute: an outbound partition silences a node — its sends
// find no route while inbound traffic still lands — and only the muted
// node's own table is invalidated.
func TestNodeOneWayMute(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	primed := n.RouteComputes()

	if err := n.SetNodeDirUp("c", true, false); err != nil {
		t.Fatal(err)
	}

	// Inbound still delivers, with no recompute anywhere: no other
	// source's tree used a c->* direction.
	for _, src := range []string{"a", "b", "d"} {
		delivered := false
		if err := n.Send(src, "c", 1<<10, nil, func(any) { delivered = true }); err != nil {
			t.Fatalf("%s->c: %v", src, err)
		}
		k.Run()
		if !delivered {
			t.Fatalf("%s->c not delivered while c is muted", src)
		}
	}
	if got := n.RouteComputes(); got != primed {
		t.Errorf("RouteComputes = %d after inbound sends, want %d", got, primed)
	}

	// Outbound fails with ErrNoRoute after one recompute.
	err := n.Send("c", "a", 1<<10, nil, func(any) {})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("c->a while muted: err %v, want ErrNoRoute", err)
	}
	if got := n.RouteComputes(); got != primed+1 {
		t.Errorf("RouteComputes = %d after muted send, want %d", got, primed+1)
	}

	// Heal: c speaks again.
	if err := n.SetNodeDirUp("c", true, true); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Send("c", "a", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Fatal("c->a not delivered after heal")
	}
}

// TestNodeOneWayDeaf: an inbound partition deafens a node — it can
// still send (its own outbound tree is untouched, zero recomputes) but
// nothing reaches it.
func TestNodeOneWayDeaf(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	primed := n.RouteComputes()

	if err := n.SetNodeDirUp("c", false, false); err != nil {
		t.Fatal(err)
	}

	// c's own table survives: a single-hop send to its neighbor b runs
	// without any recompute. (Multi-hop sends would re-consult the
	// forwarder's table, which legitimately was invalidated — b's tree
	// used the now-dead b->c direction.)
	delivered := false
	if err := n.Send("c", "b", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatalf("c->b: %v", err)
	}
	k.Run()
	if !delivered {
		t.Fatal("c->b not delivered while c is deaf")
	}
	if got := n.RouteComputes(); got != primed {
		t.Errorf("RouteComputes = %d after deaf node sent, want %d (cache kept)", got, primed)
	}

	// Everyone else recomputes and finds no way in.
	for _, src := range []string{"a", "b", "d"} {
		err := n.Send(src, "c", 1<<10, nil, func(any) {})
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("%s->c while c is deaf: err %v, want ErrNoRoute", src, err)
		}
	}

	if err := n.SetNodeDirUp("c", false, true); err != nil {
		t.Fatal(err)
	}
	delivered = false
	if err := n.Send("a", "c", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Fatal("a->c not delivered after heal")
	}
}
