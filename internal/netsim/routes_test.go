package netsim

import (
	"testing"

	"vmgrid/internal/sim"
)

// square builds the 4-cycle a-b-c-d-a and primes every source's route
// table, returning the network.
func square(t *testing.T, k *sim.Kernel) *Network {
	t.Helper()
	n := New(k)
	for _, name := range []string{"a", "b", "c", "d"} {
		n.AddNode(name)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}} {
		if err := n.ConnectLAN(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, dst := range []string{"a", "b", "c", "d"} {
			if src == dst {
				continue
			}
			if _, err := n.Latency(src, dst, 1<<10); err != nil {
				t.Fatalf("%s->%s: %v", src, dst, err)
			}
		}
	}
	return n
}

// TestLinkFlapSkipsUnaffectedRoutes: taking a link down mid-experiment
// must not recompute routes for sources whose BFS tree never used it —
// the incremental invalidation of the hot path. On the square, edge c-d
// is a non-tree edge for sources a and b (their sorted-peer BFS reaches
// c via b and d via a), so only c and d pay a recompute.
func TestLinkFlapSkipsUnaffectedRoutes(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	primed := n.RouteComputes()
	if primed != 4 {
		t.Fatalf("RouteComputes = %d after priming 4 sources, want 4", primed)
	}

	if err := n.SetLinkUp("c", "d", false); err != nil {
		t.Fatal(err)
	}

	// Unaffected sources keep their tables: no BFS reruns.
	for _, pair := range [][2]string{{"a", "c"}, {"b", "d"}, {"a", "d"}, {"b", "c"}} {
		delivered := false
		if err := n.Send(pair[0], pair[1], 1<<10, nil, func(any) { delivered = true }); err != nil {
			t.Fatalf("%s->%s: %v", pair[0], pair[1], err)
		}
		k.Run()
		if !delivered {
			t.Fatalf("%s->%s not delivered after unrelated link flap", pair[0], pair[1])
		}
	}
	if got := n.RouteComputes(); got != primed {
		t.Errorf("RouteComputes = %d after sends from unaffected sources, want %d (no recompute)", got, primed)
	}

	// Affected sources (the flapped edge was in their tree) recompute
	// exactly once each, and route around the dead link.
	for _, pair := range [][2]string{{"c", "a"}, {"d", "b"}} {
		delivered := false
		if err := n.Send(pair[0], pair[1], 1<<10, nil, func(any) { delivered = true }); err != nil {
			t.Fatalf("%s->%s: %v", pair[0], pair[1], err)
		}
		k.Run()
		if !delivered {
			t.Fatalf("%s->%s not delivered around the dead link", pair[0], pair[1])
		}
	}
	if got := n.RouteComputes(); got != primed+2 {
		t.Errorf("RouteComputes = %d after affected sources resent, want %d", got, primed+2)
	}

	// Correctness cross-check: every pair's latency equals a fresh
	// network built directly on the degraded topology.
	fresh := New(sim.NewKernel(1))
	for _, name := range []string{"a", "b", "c", "d"} {
		fresh.AddNode(name)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"d", "a"}} {
		if err := fresh.ConnectLAN(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, dst := range []string{"a", "b", "c", "d"} {
			if src == dst {
				continue
			}
			got, err1 := n.Latency(src, dst, 1<<10)
			want, err2 := fresh.Latency(src, dst, 1<<10)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s->%s: %v / %v", src, dst, err1, err2)
			}
			if got != want {
				t.Errorf("%s->%s latency %v after flap, fresh topology gives %v", src, dst, got, want)
			}
		}
	}
}

// TestLinkRestoreInvalidatesConservatively: bringing the link back up
// restores the original routes (same latencies as a never-flapped
// square), whatever mix of cached and recomputed tables survived.
func TestLinkRestoreInvalidatesConservatively(t *testing.T) {
	k := sim.NewKernel(1)
	n := square(t, k)
	if err := n.SetLinkUp("c", "d", false); err != nil {
		t.Fatal(err)
	}
	// Recompute c and d against the degraded topology.
	if _, err := n.Latency("c", "a", 1<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Latency("d", "a", 1<<10); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLinkUp("c", "d", true); err != nil {
		t.Fatal(err)
	}

	ref := square(t, sim.NewKernel(1))
	for _, src := range []string{"a", "b", "c", "d"} {
		for _, dst := range []string{"a", "b", "c", "d"} {
			if src == dst {
				continue
			}
			got, _ := n.Latency(src, dst, 1<<10)
			want, _ := ref.Latency(src, dst, 1<<10)
			if got != want {
				t.Errorf("%s->%s latency %v after restore, want %v", src, dst, got, want)
			}
		}
	}
}

// TestNodeFlapSkipsDisconnectedComponent: flapping a node down and up
// must not touch route tables of sources that could never reach it.
// Two disjoint components: p-q and m-x-y (x,y leaves of m).
func TestNodeFlapSkipsDisconnectedComponent(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"p", "q", "m", "x", "y"} {
		n.AddNode(name)
	}
	for _, e := range [][2]string{{"p", "q"}, {"m", "x"}, {"m", "y"}} {
		if err := n.ConnectLAN(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Prime p's and x's tables.
	if _, err := n.Latency("p", "q", 1<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Latency("x", "y", 1<<10); err != nil {
		t.Fatal(err)
	}
	// Route x->y through m so the forwarding hop primes m's table too.
	if err := n.Send("x", "y", 1<<10, nil, func(any) {}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	primed := n.RouteComputes()

	// m is unreachable from p: flapping it is invisible to p's table.
	if err := n.SetNodeUp("m", false); err != nil {
		t.Fatal(err)
	}
	if err := n.SetNodeUp("m", true); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Send("p", "q", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Fatal("p->q not delivered after unrelated node flap")
	}
	if got := n.RouteComputes(); got != primed {
		t.Errorf("RouteComputes = %d after disconnected-component flap, want %d", got, primed)
	}

	// x's and forwarding m's tables did depend on m: both recompute,
	// and traffic flows again.
	delivered = false
	if err := n.Send("x", "y", 1<<10, nil, func(any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !delivered {
		t.Fatal("x->y not delivered after m came back")
	}
	if got := n.RouteComputes(); got != primed+2 {
		t.Errorf("RouteComputes = %d after x resent through m, want %d", got, primed+2)
	}
}

// BenchmarkNetsimSend measures the pooled message path end to end: one
// two-hop send (a->b->c on a chain) per iteration, kernel drained.
func BenchmarkNetsimSend(b *testing.B) {
	k := sim.NewKernel(1)
	n := New(k)
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	if err := n.ConnectLAN("a", "b"); err != nil {
		b.Fatal(err)
	}
	if err := n.ConnectLAN("b", "c"); err != nil {
		b.Fatal(err)
	}
	deliver := func(any) {}
	if err := n.Send("a", "c", 1<<10, nil, deliver); err != nil {
		b.Fatal(err)
	}
	k.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send("a", "c", 1<<10, nil, deliver); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}
