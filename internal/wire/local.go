package wire

import (
	"encoding/json"
	"fmt"
)

// Local is an in-process client for a Server: the same operations as the
// TCP client, dispatched directly. It lets a daemon (or test) compose a
// fabric without round-tripping through its own socket.
type Local struct {
	srv    *Server
	nextID int64
}

// NewLocal wraps a server for in-process use.
func NewLocal(srv *Server) *Local { return &Local{srv: srv} }

// Call performs one operation, mirroring Client.Call.
func (l *Local) Call(op string, params any, out any) error {
	l.nextID++
	req := Request{ID: l.nextID, Op: op}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: params: %w", err)
		}
		req.Params = raw
	}
	resp := l.srv.dispatch(req)
	if resp.Error != "" {
		// Decode through the same code table as the TCP client, so
		// errors.Is matching behaves identically in-process.
		return decodeError(resp)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("wire: response data: %w", err)
		}
	}
	return nil
}

// AddNode attaches a node.
func (l *Local) AddNode(p AddNodeParams) error { return l.Call("add-node", p, nil) }

// Connect links two nodes.
func (l *Local) Connect(a, b, kind string) error {
	return l.Call("connect", ConnectParams{A: a, B: b, Kind: kind}, nil)
}

// InstallImage installs an image.
func (l *Local) InstallImage(p InstallImageParams) error { return l.Call("install-image", p, nil) }

// CreateData provisions user data.
func (l *Local) CreateData(p CreateDataParams) error { return l.Call("create-data", p, nil) }

// NewSession starts a session and waits for readiness.
func (l *Local) NewSession(p SessionParams) (SessionInfo, error) {
	var info SessionInfo
	err := l.Call("new-session", p, &info)
	return info, err
}

// Run executes a workload.
func (l *Local) Run(p RunParams) (RunResult, error) {
	var res RunResult
	err := l.Call("run", p, &res)
	return res, err
}

// Status fetches the fabric summary.
func (l *Local) Status() (StatusInfo, error) {
	var st StatusInfo
	err := l.Call("status", nil, &st)
	return st, err
}

// Top fetches one scrape-fresh grid snapshot.
func (l *Local) Top() (TopInfo, error) {
	var info TopInfo
	err := l.Call("top", nil, &info)
	return info, err
}

// Alerts fetches the rule set and alert firing log.
func (l *Local) Alerts() (AlertsInfo, error) {
	var info AlertsInfo
	err := l.Call("alerts", nil, &info)
	return info, err
}
