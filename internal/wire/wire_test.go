package wire

import (
	"strings"
	"sync"
	"testing"
)

// startServer spins a server on a free port and returns a connected
// client, tearing both down with the test.
func startServer(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// buildFabric assembles the standard two-site deployment over the wire.
func buildFabric(t *testing.T, c *Client) {
	t.Helper()
	nodes := []AddNodeParams{
		{Name: "front", Site: "nwu", Roles: []string{"front-end"}},
		{Name: "compute1", Site: "nwu", Roles: []string{"compute"}, Slots: 2, DHCPPrefix: "10.1.0."},
		{Name: "compute2", Site: "nwu", Roles: []string{"compute"}, Slots: 2, DHCPPrefix: "10.1.1."},
		{Name: "data", Site: "nwu", Roles: []string{"data-server"}},
		{Name: "images", Site: "ufl", Roles: []string{"image-server"}},
	}
	for _, n := range nodes {
		if err := c.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	lan := []string{"front", "compute1", "compute2", "data"}
	for i, a := range lan {
		for _, b := range lan[i+1:] {
			if err := c.Connect(a, b, "lan"); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, a := range []string{"front", "compute1", "compute2"} {
		if err := c.Connect(a, "images", "wan"); err != nil {
			t.Fatal(err)
		}
	}
	img := InstallImageParams{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 << 30, MemBytes: 128 << 20}
	for _, node := range []string{"compute1", "compute2", "images"} {
		img.Node = node
		if err := c.InstallImage(img); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateData(CreateDataParams{Node: "data", File: "dataset", Bytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPing(t *testing.T) {
	c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndSessionOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)

	info, err := c.NewSession(SessionParams{
		User: "alice", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		DataNode: "data", DataFile: "dataset",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "running" {
		t.Errorf("state = %q", info.State)
	}
	if info.Addr == "" {
		t.Error("no address")
	}
	if info.StartupSec < 5 || info.StartupSec > 30 {
		t.Errorf("startup = %.1fs, want the Table 2 restore band", info.StartupSec)
	}
	if info.Events["ready"] <= 0 {
		t.Error("missing ready event")
	}

	res, err := c.Run(RunParams{
		Session: info.Name, Name: "job", CPUSeconds: 30,
		Reads: 50, ReadBytes: 10 << 20, Mount: "data",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UserSec != 30 || res.Reads != 50 {
		t.Errorf("run result %+v", res)
	}
	if res.ElapsedSec <= 30 {
		t.Errorf("elapsed %.2f implausibly fast", res.ElapsedSec)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 5 || len(st.Sessions) != 1 {
		t.Errorf("status: %d nodes, %d sessions", len(st.Nodes), len(st.Sessions))
	}
	if st.VirtualSec <= 0 {
		t.Error("virtual clock did not advance")
	}

	if err := c.Shutdown(info.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(RunParams{Session: info.Name, Name: "x", CPUSeconds: 1}); err == nil {
		t.Error("run on dead session accepted")
	}
}

func TestPlacementParamsOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	hinted, err := c.NewSession(SessionParams{
		User: "alice", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		NodeHint: "compute2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Node != "compute2" {
		t.Errorf("hinted session on %q, want compute2", hinted.Node)
	}
	placed, err := c.NewSession(SessionParams{
		User: "bob", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		Place: "least-loaded",
	})
	if err != nil {
		t.Fatal(err)
	}
	if placed.Node == "" {
		t.Error("placed session reports no node")
	}
	if _, err := c.NewSession(SessionParams{
		User: "eve", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		Place: "warp-speed",
	}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy error = %v", err)
	}
}

func TestMigrateOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	info, err := c.NewSession(SessionParams{
		User: "bob", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	})
	if err != nil {
		t.Fatal(err)
	}
	target := "compute2"
	if info.Node == "compute2" {
		target = "compute1"
	}
	moved, err := c.Migrate(info.Name, target)
	if err != nil {
		t.Fatal(err)
	}
	if moved.Node != target {
		t.Errorf("node after migrate = %q, want %q", moved.Node, target)
	}
	if moved.State != "running" {
		t.Errorf("state = %q", moved.State)
	}
}

func TestHibernateWakeOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	info, err := c.NewSession(SessionParams{
		User: "carol", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Hibernate(info.Name)
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "hibernated" {
		t.Errorf("state = %q", h.State)
	}
	w, err := c.Wake(info.Name)
	if err != nil {
		t.Fatal(err)
	}
	if w.State != "running" {
		t.Errorf("state = %q", w.State)
	}
}

func TestQueryOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	futures, err := c.Query("vm-future")
	if err != nil {
		t.Fatal(err)
	}
	if len(futures) != 2 {
		t.Errorf("futures = %d, want 2", len(futures))
	}
	hosts, err := c.Query("host")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 5 {
		t.Errorf("hosts = %d", len(hosts))
	}
}

func TestServerErrors(t *testing.T) {
	c := startServer(t)
	if err := c.Call("frobnicate", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op error = %v", err)
	}
	if err := c.AddNode(AddNodeParams{Name: "x", Roles: []string{"warlock"}}); err == nil {
		t.Error("unknown role accepted")
	}
	if err := c.Connect("a", "b", "lan"); err == nil {
		t.Error("connect unknown nodes accepted")
	}
	if _, err := c.NewSession(SessionParams{User: "u", FrontEnd: "nope", Image: "i"}); err == nil {
		t.Error("session with unknown front end accepted")
	}
	if _, err := c.NewSession(SessionParams{User: "u", FrontEnd: "x", Image: "i", Mode: "warp"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Ping(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUsageOverTCP(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	info, err := c.NewSession(SessionParams{
		User: "dora", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
		DataNode: "data", DataFile: "dataset",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(RunParams{Session: info.Name, Name: "j", CPUSeconds: 10}); err != nil {
		t.Fatal(err)
	}
	u, err := c.Usage(info.Name)
	if err != nil {
		t.Fatal(err)
	}
	if u.GuestUserSeconds < 10 {
		t.Errorf("guest work = %v", u.GuestUserSeconds)
	}
	if u.CPUSeconds <= u.GuestUserSeconds {
		t.Errorf("cpu %v not above guest work %v", u.CPUSeconds, u.GuestUserSeconds)
	}
	if u.Efficiency <= 0 || u.Efficiency >= 1 {
		t.Errorf("efficiency = %v", u.Efficiency)
	}
	if _, err := c.Usage("ghost"); err == nil {
		t.Error("usage of unknown session accepted")
	}
}
