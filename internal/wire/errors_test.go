package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vmgrid/internal/core"
	"vmgrid/internal/retry"
)

func TestErrorCodeTable(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{fmt.Errorf("op: %w", core.ErrBadSession), CodeBadSession},
		{fmt.Errorf("op: %w", core.ErrNoFuture), CodeNoFuture},
		{fmt.Errorf("op: %w", core.ErrNoImage), CodeNoImage},
		{fmt.Errorf("op: %w", core.ErrUnknownNode), CodeUnknownNode},
		{fmt.Errorf("%w %q", ErrUnknownSession, "x"), CodeUnknownSession},
		{errors.New("something else"), ""},
	}
	for _, tc := range cases {
		if got := ErrorCode(tc.err); got != tc.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
	for _, e := range codeTable {
		back := sentinelFor(e.code)
		if back != e.err {
			t.Errorf("sentinelFor(%q) did not invert", e.code)
		}
	}
}

// TestTypedErrorRoundTrip drives a live TCP server and checks that
// sentinel errors survive the JSON protocol: errors.Is matches on the
// client side exactly as it would against the grid in process.
func TestTypedErrorRoundTrip(t *testing.T) {
	c := startServer(t)

	// Session lookup misses carry the wire-level sentinel.
	if _, err := c.Usage("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("usage of unknown session = %v, want ErrUnknownSession", err)
	}

	buildFabric(t, c)
	info, err := c.NewSession(SessionParams{
		User: "alice", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Migrating to a node that does not exist maps to core.ErrUnknownNode.
	if _, err := c.Migrate(info.Name, "nowhere"); !errors.Is(err, core.ErrUnknownNode) {
		t.Errorf("migrate to unknown node = %v, want core.ErrUnknownNode", err)
	}

	// Hibernating twice trips the state machine: the second call must
	// come back as core.ErrBadSession after a full TCP round trip.
	if _, err := c.Hibernate(info.Name); err != nil {
		t.Fatal(err)
	}
	_, err = c.Hibernate(info.Name)
	if !errors.Is(err, core.ErrBadSession) {
		t.Errorf("double hibernate = %v, want core.ErrBadSession", err)
	}

	// The message text still reads like a server error.
	if err == nil || ErrorCode(err) != CodeBadSession {
		t.Errorf("round-tripped error lost its code: %v", err)
	}
}

// TestLocalTypedErrors checks the in-process client decodes through the
// same code table.
func TestLocalTypedErrors(t *testing.T) {
	srv := NewServer(7)
	l := NewLocal(srv)
	if _, err := l.Run(RunParams{Session: "ghost", Name: "x", CPUSeconds: 1}); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("local run on unknown session = %v, want ErrUnknownSession", err)
	}
}

// TestMetricsAndSpansOps checks the server's observability exposures:
// after a session starts, the metrics op reports its counters and the
// spans op returns the Figure-3 phase decomposition.
func TestMetricsAndSpansOps(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	if _, err := c.NewSession(SessionParams{
		User: "alice", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	}); err != nil {
		t.Fatal(err)
	}

	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cp := range snap.Counters {
		if cp.Name == "core.sessions.ready" && cp.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics snapshot missing core.sessions.ready: %+v", snap.Counters)
	}

	spans, err := c.Spans()
	if err != nil {
		t.Fatal(err)
	}
	phases := 0
	for _, sp := range spans {
		if sp.Cat == "phase" {
			phases++
		}
	}
	if phases != 5 {
		t.Errorf("phase spans = %d, want 5 (query/locate/stage/instantiate/connect)", phases)
	}
}

// TestTraceAndIncidentOps drives the causal-observability surface over
// TCP: trace returns the session's complete causal tree (one TraceID,
// phases and RPCs parented into it) plus a postmortem whose critical
// path partitions the startup, and the incident ops expose the flight
// recorder every served grid carries from birth.
func TestTraceAndIncidentOps(t *testing.T) {
	c := startServer(t)
	buildFabric(t, c)
	info, err := c.NewSession(SessionParams{
		User: "alice", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := c.Trace(info.Name)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Session != info.Name || tr.Trace == "0000000000000000" {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	phases, foreign := 0, 0
	for _, sp := range tr.Spans {
		if sp.Trace.String() != tr.Trace {
			foreign++
		}
		if sp.Cat == "phase" {
			phases++
		}
	}
	if foreign != 0 || phases != 5 {
		t.Errorf("trace spans: %d foreign, %d phases (want 0, 5)", foreign, phases)
	}
	if tr.Report == nil {
		t.Fatal("trace has no postmortem report")
	}
	var sum float64
	for _, a := range tr.Report.Attribution {
		sum += a.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("attribution shares sum to %.4f, want 1", sum)
	}

	// A healthy startup triggers nothing; the list op still answers.
	incs, err := c.Incidents()
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 0 {
		t.Errorf("fresh grid has %d incidents, want 0", len(incs))
	}
	if _, err := c.Incident("inc-999-nope"); err == nil {
		t.Error("unknown incident id did not error")
	}
	if _, err := c.Trace("ghost"); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("trace of unknown session = %v, want ErrUnknownSession", err)
	}
}

// TestCallOptions exercises WithDeadline and WithRetry pass-through on
// both the success path and a fast-fail probe against a dead server.
func TestCallOptions(t *testing.T) {
	c := startServer(t)
	if err := c.Ping(WithDeadline(10*time.Second), WithRetry(retry.Policy{MaxAttempts: 2})); err != nil {
		t.Fatal(err)
	}

	dead, err := Dial(c.addr)
	if err != nil {
		t.Fatal(err)
	}
	_ = dead.Close()
	// Simulate a vanished server: point at a port nothing listens on.
	dead.addr = "127.0.0.1:1"
	start := time.Now()
	if err := dead.Ping(WithRetry(retry.Policy{MaxAttempts: 1})); err == nil {
		t.Error("ping of dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("single-attempt probe took %v, backoff not bypassed", elapsed)
	}
}
