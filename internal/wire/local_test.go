package wire

import (
	"strings"
	"testing"
)

func TestLocalClientFullFlow(t *testing.T) {
	srv := NewServer(1)
	l := NewLocal(srv)

	if err := l.AddNode(AddNodeParams{Name: "front", Site: "s", Roles: []string{"front-end"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddNode(AddNodeParams{
		Name: "c1", Site: "s", Roles: []string{"compute"}, Slots: 1, DHCPPrefix: "10.0.0.",
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Connect("front", "c1", "lan"); err != nil {
		t.Fatal(err)
	}
	if err := l.InstallImage(InstallImageParams{
		Node: "c1", Name: "rh72", OS: "rh", DiskBytes: 1 << 30, MemBytes: 128 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateData(CreateDataParams{Node: "c1", File: "d", Bytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}

	info, err := l.NewSession(SessionParams{
		User: "u", FrontEnd: "front", Image: "rh72",
		Mode: "restore", Disk: "non-persistent", Access: "local",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "running" {
		t.Errorf("state = %q", info.State)
	}

	res, err := l.Run(RunParams{Session: info.Name, Name: "j", CPUSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.UserSec != 5 {
		t.Errorf("user = %v", res.UserSec)
	}

	st, err := l.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 2 || len(st.Sessions) != 1 {
		t.Errorf("status: %d nodes, %d sessions", len(st.Nodes), len(st.Sessions))
	}
}

func TestLocalClientErrors(t *testing.T) {
	srv := NewServer(1)
	l := NewLocal(srv)
	if err := l.Call("bogus", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("bogus op = %v", err)
	}
	if err := l.Connect("x", "y", "lan"); err == nil {
		t.Error("connect unknown nodes accepted")
	}
	// Sessions through Local hit the same validation as over TCP.
	if _, err := l.NewSession(SessionParams{}); err == nil {
		t.Error("empty session params accepted")
	}
	if err := l.Call("run", map[string]any{"session": "nope", "cpuSeconds": 1}, nil); err == nil {
		t.Error("run on unknown session accepted")
	}
	// Missing params payloads are rejected, not crashed on.
	if err := l.Call("add-node", nil, nil); err == nil {
		t.Error("paramless add-node accepted")
	}
	// Staged/loopback keyword coverage through sessionConfig.
	for _, p := range []SessionParams{
		{User: "u", FrontEnd: "x", Image: "i", Disk: "ephemeral"},
		{User: "u", FrontEnd: "x", Image: "i", Access: "carrier-pigeon"},
	} {
		if _, err := l.NewSession(p); err == nil {
			t.Errorf("bad params accepted: %+v", p)
		}
	}
}
