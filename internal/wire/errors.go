package wire

import (
	"errors"
	"fmt"

	"vmgrid/internal/core"
)

// ErrUnknownSession is returned when an op names a session the server
// does not hold.
var ErrUnknownSession = errors.New("wire: unknown session")

// Stable wire codes for sentinel errors. The server stamps the matching
// code into Response.Code; the client reconstructs the sentinel from it,
// so errors.Is(err, core.ErrBadSession) holds across the TCP boundary.
// Codes are part of the protocol: never renumber or reuse them.
const (
	CodeBadSession     = "bad-session"
	CodeNoFuture       = "no-future"
	CodeNoImage        = "no-image"
	CodeNoAddress      = "no-address"
	CodeUnknownNode    = "unknown-node"
	CodeLeaseExpired   = "lease-expired"
	CodeUnknownSession = "unknown-session"
	CodeNoQuorum       = "no-quorum"
	CodeFencedEpoch    = "fenced-epoch"
)

// codeTable pairs each wire code with its sentinel. Order matters only
// for ErrorCode's scan; keep the most common first.
var codeTable = []struct {
	code string
	err  error
}{
	{CodeBadSession, core.ErrBadSession},
	{CodeNoFuture, core.ErrNoFuture},
	{CodeNoImage, core.ErrNoImage},
	{CodeNoAddress, core.ErrNoAddress},
	{CodeUnknownNode, core.ErrUnknownNode},
	{CodeLeaseExpired, core.ErrLeaseExpired},
	{CodeUnknownSession, ErrUnknownSession},
	{CodeNoQuorum, core.ErrNoQuorum},
	{CodeFencedEpoch, core.ErrFencedEpoch},
}

// ErrorCode maps err to its stable wire code, or "" when err wraps no
// known sentinel.
func ErrorCode(err error) string {
	for _, e := range codeTable {
		if errors.Is(err, e.err) {
			return e.code
		}
	}
	return ""
}

// sentinelFor returns the sentinel for a wire code, or nil.
func sentinelFor(code string) error {
	for _, e := range codeTable {
		if e.code == code {
			return e.err
		}
	}
	return nil
}

// decodeError rebuilds a client-side error from a response: the server's
// message text, wrapping the sentinel its code names (when recognized)
// so errors.Is matching survives the round trip.
func decodeError(resp Response) error {
	if sent := sentinelFor(resp.Code); sent != nil {
		return fmt.Errorf("wire: server: %s%.0w", resp.Error, sent)
	}
	return fmt.Errorf("wire: server: %s", resp.Error)
}
