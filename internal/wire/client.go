package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vmgrid/internal/obs"
	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// Config tunes the client's fault handling. The zero value selects the
// defaults noted on each field.
type Config struct {
	// DialTimeout bounds each connection attempt. Default 5 s.
	DialTimeout time.Duration
	// CallTimeout is the per-attempt read/write deadline of one Call
	// round trip. Default 60 s (sessions pump hours of virtual time but
	// only milliseconds of wall clock).
	CallTimeout time.Duration
	// Retry schedules dial-or-send attempts per Call. Only requests
	// that never reached the server are retried; once a request is on
	// the wire, a lost reply surfaces as an error (resending could
	// double-execute a non-idempotent operation). The zero policy
	// defaults to 4 attempts from 50 ms, capped at 2 s.
	Retry retry.Policy
}

// wireBaseBackoff is the historical base backoff applied when the
// policy leaves Backoff zero.
const wireBaseBackoff = 50 * sim.Millisecond

func (c *Config) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 60 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 4
	}
	if c.Retry.MaxBackoff <= 0 {
		c.Retry.MaxBackoff = 2 * sim.Second
	}
}

// CallOption tunes one Call (and every convenience wrapper built on
// it) without touching the client's Config.
type CallOption func(*callOpts)

type callOpts struct {
	deadline time.Duration
	policy   retry.Policy
	hasRetry bool
}

// WithDeadline overrides the per-attempt CallTimeout for this call.
func WithDeadline(d time.Duration) CallOption {
	return func(o *callOpts) { o.deadline = d }
}

// WithRetry overrides the retry policy for this call (e.g. a single
// attempt for a probe, or a patient schedule for a just-restarted
// server).
func WithRetry(p retry.Policy) CallOption {
	return func(o *callOpts) { o.policy, o.hasRetry = p, true }
}

// Client talks to a vmgridd server over TCP. A broken connection is
// re-dialed (with capped exponential backoff) on the next Call, so a
// client handle survives server restarts.
type Client struct {
	addr string
	cfg  Config

	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Scanner
	enc    *json.Encoder
	nextID int64
}

// Dial connects to a server with default fault handling.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, Config{})
}

// DialConfig connects to a server with explicit fault handling. The
// initial connection is established eagerly so configuration errors
// surface here rather than on the first Call.
func DialConfig(addr string, cfg Config) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.dropConn()
	return err
}

// ensureConn dials if no live connection exists. Callers hold mu.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 4<<20)
	c.conn, c.reader, c.enc = conn, scanner, json.NewEncoder(conn)
	return nil
}

// dropConn discards a connection whose stream state is unknown; the
// next attempt re-dials.
func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn, c.reader, c.enc = nil, nil, nil
}

// Call performs one round trip. params may be nil. The response data is
// unmarshaled into out when out is non-nil. Attempts that fail before
// the request is sent (dial errors, send errors) are retried per the
// configured retry.Policy; failures after the send are returned as-is.
// Options adjust the deadline or policy for this call only.
func (c *Client) Call(op string, params any, out any, opts ...CallOption) error {
	var o callOpts
	for _, opt := range opts {
		opt(&o)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: params: %w", err)
		}
		raw = b
	}
	policy := c.cfg.Retry
	if o.hasRetry {
		policy = o.policy
	}
	callTimeout := c.cfg.CallTimeout
	if o.deadline > 0 {
		callTimeout = o.deadline
	}
	var lastErr error
	for attempt := 1; attempt <= policy.Attempts(); attempt++ {
		if attempt > 1 {
			time.Sleep(policy.Delay(attempt-1, wireBaseBackoff).Std())
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
			continue
		}
		c.nextID++
		req := Request{ID: c.nextID, Op: op, Params: raw}
		deadline := time.Now().Add(callTimeout)
		_ = c.conn.SetWriteDeadline(deadline)
		if err := c.enc.Encode(req); err != nil {
			// The request never made it out whole; safe to resend on a
			// fresh connection.
			c.dropConn()
			lastErr = fmt.Errorf("wire: send: %w", err)
			continue
		}
		_ = c.conn.SetReadDeadline(deadline)
		return c.recv(req, out)
	}
	return lastErr
}

// recv reads and decodes the response to req. Callers hold mu.
func (c *Client) recv(req Request, out any) error {
	if !c.reader.Scan() {
		err := c.reader.Err()
		c.dropConn()
		if err != nil {
			return fmt.Errorf("wire: recv: %w", err)
		}
		return errors.New("wire: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.reader.Bytes(), &resp); err != nil {
		return fmt.Errorf("wire: bad response: %w", err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("wire: response data: %w", err)
		}
	}
	return nil
}

// Convenience wrappers for the common operations. Each forwards its
// CallOptions to Call.

// AddNode attaches a node to the served grid.
func (c *Client) AddNode(p AddNodeParams, opts ...CallOption) error {
	return c.Call("add-node", p, nil, opts...)
}

// Connect links two nodes.
func (c *Client) Connect(a, b, kind string, opts ...CallOption) error {
	return c.Call("connect", ConnectParams{A: a, B: b, Kind: kind}, nil, opts...)
}

// InstallImage installs an image on a node.
func (c *Client) InstallImage(p InstallImageParams, opts ...CallOption) error {
	return c.Call("install-image", p, nil, opts...)
}

// CreateData provisions user data on a node.
func (c *Client) CreateData(p CreateDataParams, opts ...CallOption) error {
	return c.Call("create-data", p, nil, opts...)
}

// NewSession starts a VM session and waits for it to be ready.
func (c *Client) NewSession(p SessionParams, opts ...CallOption) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("new-session", p, &info, opts...)
	return info, err
}

// Run executes a workload in a session and waits for completion.
func (c *Client) Run(p RunParams, opts ...CallOption) (RunResult, error) {
	var res RunResult
	err := c.Call("run", p, &res, opts...)
	return res, err
}

// Migrate moves a session to another node.
func (c *Client) Migrate(session, target string, opts ...CallOption) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("migrate", MigrateParams{Session: session, Target: target}, &info, opts...)
	return info, err
}

// Hibernate checkpoints a session.
func (c *Client) Hibernate(session string, opts ...CallOption) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("hibernate", SessionRef{Session: session}, &info, opts...)
	return info, err
}

// Wake resumes a hibernated session.
func (c *Client) Wake(session string, opts ...CallOption) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("wake", SessionRef{Session: session}, &info, opts...)
	return info, err
}

// Shutdown ends a session.
func (c *Client) Shutdown(session string, opts ...CallOption) error {
	return c.Call("shutdown", SessionRef{Session: session}, nil, opts...)
}

// Usage fetches a session's metered consumption.
func (c *Client) Usage(session string, opts ...CallOption) (UsageInfo, error) {
	var u UsageInfo
	err := c.Call("usage", SessionRef{Session: session}, &u, opts...)
	return u, err
}

// Query lists information-service records of a kind.
func (c *Client) Query(kind string, opts ...CallOption) ([]QueryEntry, error) {
	var entries []QueryEntry
	err := c.Call("query", QueryParams{Kind: kind}, &entries, opts...)
	return entries, err
}

// Status fetches the fabric summary.
func (c *Client) Status(opts ...CallOption) (StatusInfo, error) {
	var st StatusInfo
	err := c.Call("status", nil, &st, opts...)
	return st, err
}

// Metrics fetches the served grid's metrics snapshot.
func (c *Client) Metrics(opts ...CallOption) (obs.Snapshot, error) {
	var snap obs.Snapshot
	err := c.Call("metrics", nil, &snap, opts...)
	return snap, err
}

// Spans fetches the served grid's recorded spans.
func (c *Client) Spans(opts ...CallOption) ([]obs.SpanRecord, error) {
	var spans []obs.SpanRecord
	err := c.Call("spans", nil, &spans, opts...)
	return spans, err
}

// Trace fetches one session's causal tree and postmortem report.
func (c *Client) Trace(session string, opts ...CallOption) (TraceInfo, error) {
	var info TraceInfo
	err := c.Call("trace", SessionRef{Session: session}, &info, opts...)
	return info, err
}

// Incidents lists the flight recorder's incident bundles.
func (c *Client) Incidents(opts ...CallOption) ([]IncidentInfo, error) {
	var rows []IncidentInfo
	err := c.Call("incidents", nil, &rows, opts...)
	return rows, err
}

// Incident fetches one full incident bundle by id.
func (c *Client) Incident(id string, opts ...CallOption) (obs.Incident, error) {
	var inc obs.Incident
	err := c.Call("incident", IncidentRef{ID: id}, &inc, opts...)
	return inc, err
}

// Top fetches one scrape-fresh grid snapshot.
func (c *Client) Top(opts ...CallOption) (TopInfo, error) {
	var info TopInfo
	err := c.Call("top", nil, &info, opts...)
	return info, err
}

// Alerts fetches the rule set and full alert firing log.
func (c *Client) Alerts(opts ...CallOption) (AlertsInfo, error) {
	var info AlertsInfo
	err := c.Call("alerts", nil, &info, opts...)
	return info, err
}

// Watch streams count top frames everySec virtual seconds apart,
// invoking fn for each as it arrives. fn returning an error stops the
// watch early (the connection is dropped to discard the remaining
// frames). Watch holds the client for the whole stream — other calls on
// this client block until it finishes.
func (c *Client) Watch(count int, everySec float64, fn func(TopInfo) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return err
	}
	c.nextID++
	req := Request{ID: c.nextID, Op: "watch"}
	b, err := json.Marshal(WatchParams{Count: count, EverySec: everySec})
	if err != nil {
		return fmt.Errorf("wire: params: %w", err)
	}
	req.Params = b
	deadline := time.Now().Add(c.cfg.CallTimeout)
	_ = c.conn.SetWriteDeadline(deadline)
	if err := c.enc.Encode(req); err != nil {
		c.dropConn()
		return fmt.Errorf("wire: send: %w", err)
	}
	for {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.CallTimeout))
		if !c.reader.Scan() {
			err := c.reader.Err()
			c.dropConn()
			if err != nil {
				return fmt.Errorf("wire: recv: %w", err)
			}
			return errors.New("wire: connection closed")
		}
		var resp Response
		if err := json.Unmarshal(c.reader.Bytes(), &resp); err != nil {
			return fmt.Errorf("wire: bad response: %w", err)
		}
		if resp.ID != req.ID {
			return fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
		}
		if resp.Error != "" {
			return decodeError(resp)
		}
		var frame TopInfo
		if err := json.Unmarshal(resp.Data, &frame); err != nil {
			return fmt.Errorf("wire: response data: %w", err)
		}
		if err := fn(frame); err != nil {
			// Abandon the stream: the connection carries frames we will
			// not read, so discard it.
			c.dropConn()
			return err
		}
		if !resp.More {
			return nil
		}
	}
}

// Ping checks liveness.
func (c *Client) Ping(opts ...CallOption) error {
	var pong string
	if err := c.Call("ping", nil, &pong, opts...); err != nil {
		return err
	}
	if pong != "pong" {
		return fmt.Errorf("wire: unexpected ping reply %q", pong)
	}
	return nil
}
