package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Config tunes the client's fault handling. The zero value selects the
// defaults noted on each field.
type Config struct {
	// DialTimeout bounds each connection attempt. Default 5 s.
	DialTimeout time.Duration
	// CallTimeout is the per-attempt read/write deadline of one Call
	// round trip. Default 60 s (sessions pump hours of virtual time but
	// only milliseconds of wall clock).
	CallTimeout time.Duration
	// MaxAttempts bounds dial-or-send attempts per Call. Only requests
	// that never reached the server are retried; once a request is on
	// the wire, a lost reply surfaces as an error (resending could
	// double-execute a non-idempotent operation). Default 4.
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling per
	// attempt and capped at 2 s. Default 50 ms.
	Backoff time.Duration
}

func (c *Config) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 60 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// Client talks to a vmgridd server over TCP. A broken connection is
// re-dialed (with capped exponential backoff) on the next Call, so a
// client handle survives server restarts.
type Client struct {
	addr string
	cfg  Config

	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Scanner
	enc    *json.Encoder
	nextID int64
}

// Dial connects to a server with default fault handling.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, Config{})
}

// DialConfig connects to a server with explicit fault handling. The
// initial connection is established eagerly so configuration errors
// surface here rather than on the first Call.
func DialConfig(addr string, cfg Config) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.dropConn()
	return err
}

// ensureConn dials if no live connection exists. Callers hold mu.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 4<<20)
	c.conn, c.reader, c.enc = conn, scanner, json.NewEncoder(conn)
	return nil
}

// dropConn discards a connection whose stream state is unknown; the
// next attempt re-dials.
func (c *Client) dropConn() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn, c.reader, c.enc = nil, nil, nil
}

// Call performs one round trip. params may be nil. The response data is
// unmarshaled into out when out is non-nil. Attempts that fail before
// the request is sent (dial errors, send errors) are retried with
// backoff; failures after the send are returned as-is.
func (c *Client) Call(op string, params any, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: params: %w", err)
		}
		raw = b
	}
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		if err := c.ensureConn(); err != nil {
			lastErr = err
			continue
		}
		c.nextID++
		req := Request{ID: c.nextID, Op: op, Params: raw}
		deadline := time.Now().Add(c.cfg.CallTimeout)
		_ = c.conn.SetWriteDeadline(deadline)
		if err := c.enc.Encode(req); err != nil {
			// The request never made it out whole; safe to resend on a
			// fresh connection.
			c.dropConn()
			lastErr = fmt.Errorf("wire: send: %w", err)
			continue
		}
		_ = c.conn.SetReadDeadline(deadline)
		return c.recv(req, out)
	}
	return lastErr
}

// recv reads and decodes the response to req. Callers hold mu.
func (c *Client) recv(req Request, out any) error {
	if !c.reader.Scan() {
		err := c.reader.Err()
		c.dropConn()
		if err != nil {
			return fmt.Errorf("wire: recv: %w", err)
		}
		return errors.New("wire: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.reader.Bytes(), &resp); err != nil {
		return fmt.Errorf("wire: bad response: %w", err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("wire: server: %s", resp.Error)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("wire: response data: %w", err)
		}
	}
	return nil
}

// Convenience wrappers for the common operations.

// AddNode attaches a node to the served grid.
func (c *Client) AddNode(p AddNodeParams) error { return c.Call("add-node", p, nil) }

// Connect links two nodes.
func (c *Client) Connect(a, b, kind string) error {
	return c.Call("connect", ConnectParams{A: a, B: b, Kind: kind}, nil)
}

// InstallImage installs an image on a node.
func (c *Client) InstallImage(p InstallImageParams) error { return c.Call("install-image", p, nil) }

// CreateData provisions user data on a node.
func (c *Client) CreateData(p CreateDataParams) error { return c.Call("create-data", p, nil) }

// NewSession starts a VM session and waits for it to be ready.
func (c *Client) NewSession(p SessionParams) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("new-session", p, &info)
	return info, err
}

// Run executes a workload in a session and waits for completion.
func (c *Client) Run(p RunParams) (RunResult, error) {
	var res RunResult
	err := c.Call("run", p, &res)
	return res, err
}

// Migrate moves a session to another node.
func (c *Client) Migrate(session, target string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("migrate", MigrateParams{Session: session, Target: target}, &info)
	return info, err
}

// Hibernate checkpoints a session.
func (c *Client) Hibernate(session string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("hibernate", SessionRef{Session: session}, &info)
	return info, err
}

// Wake resumes a hibernated session.
func (c *Client) Wake(session string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("wake", SessionRef{Session: session}, &info)
	return info, err
}

// Shutdown ends a session.
func (c *Client) Shutdown(session string) error {
	return c.Call("shutdown", SessionRef{Session: session}, nil)
}

// Usage fetches a session's metered consumption.
func (c *Client) Usage(session string) (UsageInfo, error) {
	var u UsageInfo
	err := c.Call("usage", SessionRef{Session: session}, &u)
	return u, err
}

// Query lists information-service records of a kind.
func (c *Client) Query(kind string) ([]QueryEntry, error) {
	var entries []QueryEntry
	err := c.Call("query", QueryParams{Kind: kind}, &entries)
	return entries, err
}

// Status fetches the fabric summary.
func (c *Client) Status() (StatusInfo, error) {
	var st StatusInfo
	err := c.Call("status", nil, &st)
	return st, err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	var pong string
	if err := c.Call("ping", nil, &pong); err != nil {
		return err
	}
	if pong != "pong" {
		return fmt.Errorf("wire: unexpected ping reply %q", pong)
	}
	return nil
}
