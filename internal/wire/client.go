package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client talks to a vmgridd server over TCP.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	reader *bufio.Scanner
	enc    *json.Encoder
	nextID int64
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &Client{conn: conn, reader: scanner, enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call performs one round trip. params may be nil. The response data is
// unmarshaled into out when out is non-nil.
func (c *Client) Call(op string, params any, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := Request{ID: c.nextID, Op: op}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: params: %w", err)
		}
		req.Params = raw
	}
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	if !c.reader.Scan() {
		if err := c.reader.Err(); err != nil {
			return fmt.Errorf("wire: recv: %w", err)
		}
		return fmt.Errorf("wire: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.reader.Bytes(), &resp); err != nil {
		return fmt.Errorf("wire: bad response: %w", err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("wire: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("wire: server: %s", resp.Error)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Data, out); err != nil {
			return fmt.Errorf("wire: response data: %w", err)
		}
	}
	return nil
}

// Convenience wrappers for the common operations.

// AddNode attaches a node to the served grid.
func (c *Client) AddNode(p AddNodeParams) error { return c.Call("add-node", p, nil) }

// Connect links two nodes.
func (c *Client) Connect(a, b, kind string) error {
	return c.Call("connect", ConnectParams{A: a, B: b, Kind: kind}, nil)
}

// InstallImage installs an image on a node.
func (c *Client) InstallImage(p InstallImageParams) error { return c.Call("install-image", p, nil) }

// CreateData provisions user data on a node.
func (c *Client) CreateData(p CreateDataParams) error { return c.Call("create-data", p, nil) }

// NewSession starts a VM session and waits for it to be ready.
func (c *Client) NewSession(p SessionParams) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("new-session", p, &info)
	return info, err
}

// Run executes a workload in a session and waits for completion.
func (c *Client) Run(p RunParams) (RunResult, error) {
	var res RunResult
	err := c.Call("run", p, &res)
	return res, err
}

// Migrate moves a session to another node.
func (c *Client) Migrate(session, target string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("migrate", MigrateParams{Session: session, Target: target}, &info)
	return info, err
}

// Hibernate checkpoints a session.
func (c *Client) Hibernate(session string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("hibernate", SessionRef{Session: session}, &info)
	return info, err
}

// Wake resumes a hibernated session.
func (c *Client) Wake(session string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Call("wake", SessionRef{Session: session}, &info)
	return info, err
}

// Shutdown ends a session.
func (c *Client) Shutdown(session string) error {
	return c.Call("shutdown", SessionRef{Session: session}, nil)
}

// Usage fetches a session's metered consumption.
func (c *Client) Usage(session string) (UsageInfo, error) {
	var u UsageInfo
	err := c.Call("usage", SessionRef{Session: session}, &u)
	return u, err
}

// Query lists information-service records of a kind.
func (c *Client) Query(kind string) ([]QueryEntry, error) {
	var entries []QueryEntry
	err := c.Call("query", QueryParams{Kind: kind}, &entries)
	return entries, err
}

// Status fetches the fabric summary.
func (c *Client) Status() (StatusInfo, error) {
	var st StatusInfo
	err := c.Call("status", nil, &st)
	return st, err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	var pong string
	if err := c.Call("ping", nil, &pong); err != nil {
		return err
	}
	if pong != "pong" {
		return fmt.Errorf("wire: unexpected ping reply %q", pong)
	}
	return nil
}
