// Package wire exposes a vmgrid fabric over real TCP: a JSON
// line-protocol server wrapping a core.Grid, and a matching client. This
// is the deployment face of the reproduction — cmd/vmgridd serves a
// grid, cmd/vmgridctl drives it — while the simulation kernel underneath
// advances virtual time as operations demand.
//
// Every request is one JSON object on one line; every response likewise.
// The grid is single-threaded by construction (the simulation kernel is
// not concurrent), so the server serializes all operations.
package wire

import (
	"encoding/json"
	"fmt"

	"vmgrid/internal/obs"
)

// Request is one client->server message.
type Request struct {
	ID     int64           `json:"id"`
	Op     string          `json:"op"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is one server->client message. Code, when set, is the stable
// wire code of a sentinel error (see errors.go); clients use it to
// reconstruct typed errors for errors.Is matching. More marks a
// streaming response (the watch op) with further frames to follow under
// the same ID.
type Response struct {
	ID    int64           `json:"id"`
	Error string          `json:"error,omitempty"`
	Code  string          `json:"code,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
	More  bool            `json:"more,omitempty"`
}

// AddNodeParams configures the add-node op.
type AddNodeParams struct {
	Name       string   `json:"name"`
	Site       string   `json:"site"`
	Roles      []string `json:"roles"`
	Slots      int      `json:"slots,omitempty"`
	DHCPPrefix string   `json:"dhcpPrefix,omitempty"`
}

// ConnectParams configures the connect op.
type ConnectParams struct {
	A    string `json:"a"`
	B    string `json:"b"`
	Kind string `json:"kind"` // "lan" or "wan"
}

// InstallImageParams configures the install-image op.
type InstallImageParams struct {
	Node      string `json:"node"`
	Name      string `json:"name"`
	OS        string `json:"os"`
	DiskBytes int64  `json:"diskBytes"`
	MemBytes  int64  `json:"memBytes,omitempty"`
}

// CreateDataParams configures the create-data op.
type CreateDataParams struct {
	Node  string `json:"node"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// SessionParams configures the new-session op.
type SessionParams struct {
	User     string `json:"user"`
	FrontEnd string `json:"frontEnd"`
	Image    string `json:"image"`
	Mode     string `json:"mode"`   // "reboot" or "restore"
	Disk     string `json:"disk"`   // "persistent" or "non-persistent"
	Access   string `json:"access"` // "local", "loopback", "on-demand", "staged"
	Site     string `json:"site,omitempty"`
	DataNode string `json:"dataNode,omitempty"`
	DataFile string `json:"dataFile,omitempty"`
	HomeNode string `json:"homeNode,omitempty"`
	// Place names the placement policy ("least-loaded", "predicted-load",
	// "pack"); empty keeps the information service's ranking.
	Place string `json:"place,omitempty"`
	// NodeHint prefers the named compute node when it is a viable
	// candidate (a preference, not a pin).
	NodeHint string `json:"nodeHint,omitempty"`
}

// SessionInfo describes a session in responses.
type SessionInfo struct {
	Name        string             `json:"name"`
	State       string             `json:"state"`
	Node        string             `json:"node,omitempty"`
	Addr        string             `json:"addr,omitempty"`
	ImageServer string             `json:"imageServer,omitempty"`
	LocalUser   string             `json:"localUser,omitempty"`
	Console     string             `json:"console,omitempty"`
	StartupSec  float64            `json:"startupSec,omitempty"`
	Events      map[string]float64 `json:"events,omitempty"`
}

// RunParams configures the run op (workload in a session).
type RunParams struct {
	Session       string  `json:"session"`
	Name          string  `json:"name"`
	CPUSeconds    float64 `json:"cpuSeconds"`
	PrivPerSec    float64 `json:"privPerSec,omitempty"`
	MemVirtPerSec float64 `json:"memVirtPerSec,omitempty"`
	Reads         int     `json:"reads,omitempty"`
	ReadBytes     int64   `json:"readBytes,omitempty"`
	Mount         string  `json:"mount,omitempty"`
	RootOps       int     `json:"rootOps,omitempty"`
	RootBytes     int64   `json:"rootBytes,omitempty"`
}

// RunResult summarizes a finished workload.
type RunResult struct {
	Name       string  `json:"name"`
	ElapsedSec float64 `json:"elapsedSec"`
	UserSec    float64 `json:"userSec"`
	SysSec     float64 `json:"sysSec"`
	Reads      int     `json:"reads"`
	IOWaitSec  float64 `json:"ioWaitSec"`
}

// MigrateParams configures the migrate op.
type MigrateParams struct {
	Session string `json:"session"`
	Target  string `json:"target"`
}

// SessionRef names a session for lifecycle ops.
type SessionRef struct {
	Session string `json:"session"`
}

// NodeInfo describes a node in status responses.
type NodeInfo struct {
	Name     string   `json:"name"`
	Site     string   `json:"site"`
	Slots    int      `json:"slots"`
	Runnable int      `json:"runnable"`
	Files    []string `json:"files,omitempty"`
}

// StatusInfo is the status op response.
type StatusInfo struct {
	VirtualSec float64       `json:"virtualSec"`
	Nodes      []NodeInfo    `json:"nodes"`
	Sessions   []SessionInfo `json:"sessions"`
}

// UsageInfo is the usage op response: a session's metered consumption.
type UsageInfo struct {
	Session           string  `json:"session"`
	CPUSeconds        float64 `json:"cpuSeconds"`
	GuestUserSeconds  float64 `json:"guestUserSeconds"`
	Efficiency        float64 `json:"efficiency"`
	DiffBytes         int64   `json:"diffBytes"`
	ImageBytesFetched uint64  `json:"imageBytesFetched"`
	DataBytesFetched  uint64  `json:"dataBytesFetched"`
	WallSeconds       float64 `json:"wallSeconds"`
}

// QueryParams configures the query op (information service).
type QueryParams struct {
	Kind string `json:"kind"`
}

// QueryEntry is one information-service record in responses.
type QueryEntry struct {
	Kind  string         `json:"kind"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs"`
}

// TopNode is one node row of a top snapshot.
type TopNode struct {
	Name          string  `json:"name"`
	Site          string  `json:"site"`
	Slots         int     `json:"slots"`
	Runnable      int     `json:"runnable"`
	Load          float64 `json:"load"`
	PredictedLoad float64 `json:"predictedLoad,omitempty"`
	Crashed       bool    `json:"crashed,omitempty"`
}

// TopSession is one session row of a top snapshot.
type TopSession struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Node        string  `json:"node,omitempty"`
	Slowdown    float64 `json:"slowdown,omitempty"`
	VFSHitRate  float64 `json:"vfsHitRate,omitempty"`
	VFSRetries  uint64  `json:"vfsRetries,omitempty"`
	GuestSec    float64 `json:"guestSec,omitempty"`
	WallSeconds float64 `json:"wallSeconds,omitempty"`
	Epoch       int64   `json:"epoch,omitempty"` // fencing epoch (0 until first failover)
}

// TopStaging is the chunked staging plane's grid-wide dedup summary
// (present only when chunked staging is enabled): how many chunk
// transfers the per-node caches answered locally, and the payload bytes
// that never crossed the wire because of it.
type TopStaging struct {
	ChunkHits   uint64  `json:"chunkHits"`
	ChunkMisses uint64  `json:"chunkMisses"`
	HitRate     float64 `json:"hitRate"`
	BytesSaved  uint64  `json:"bytesSaved"`
	Evictions   uint64  `json:"evictions,omitempty"`
}

// TopReplica is one GIS replica row of a top snapshot (present only on
// grids running a replicated registry).
type TopReplica struct {
	Node string `json:"node"`
	// LagSec is how far the replica's newest entry trails the newest
	// entry anywhere in the cluster — nonzero while partitioned, zero
	// again once anti-entropy reconverges.
	LagSec float64 `json:"lagSec"`
}

// AlertInfo is one alert firing in top/alerts responses. ResolvedSec is
// negative while the alert is still active.
type AlertInfo struct {
	Rule        string  `json:"rule"`
	Series      string  `json:"series"`
	AtSec       float64 `json:"atSec"`
	Value       float64 `json:"value"`
	ResolvedSec float64 `json:"resolvedSec"`
}

// AlertRule describes one registered rule in the alerts response.
type AlertRule struct {
	Name string `json:"name"`
	Expr string `json:"expr"`
}

// TopInfo is the top op response: one scrape-fresh snapshot of the
// whole grid.
type TopInfo struct {
	VirtualSec float64      `json:"virtualSec"`
	Scrapes    int          `json:"scrapes"`
	Nodes      []TopNode    `json:"nodes"`
	Sessions   []TopSession `json:"sessions"`
	Staging    *TopStaging  `json:"staging,omitempty"`  // chunk dedup, if enabled
	Replicas   []TopReplica `json:"replicas,omitempty"` // GIS replicas, if clustered
	Alerts     []AlertInfo  `json:"alerts"`             // active firings only
}

// AlertsInfo is the alerts op response: the rule set plus the full
// firing log.
type AlertsInfo struct {
	Rules   []AlertRule `json:"rules"`
	Firings []AlertInfo `json:"firings"`
}

// TraceInfo is the trace op response: a session's full causal tree
// (every span sharing its TraceID, in recording order) plus the
// postmortem report computed over it. Report is omitted when the
// session root has not closed yet or the tracer retains no spans.
type TraceInfo struct {
	Session string           `json:"session"`
	Trace   string           `json:"trace"` // hex TraceID
	Spans   []obs.SpanRecord `json:"spans"`
	Report  *obs.Report      `json:"report,omitempty"`
}

// IncidentRef names an incident bundle for the incident op.
type IncidentRef struct {
	ID string `json:"id"`
}

// IncidentInfo is one row of the incidents op response.
type IncidentInfo struct {
	ID      string  `json:"id"`
	Trigger string  `json:"trigger"`
	Subject string  `json:"subject"`
	AtSec   float64 `json:"atSec"`
	// SealedSec is negative while the incident is still open.
	SealedSec float64 `json:"sealedSec"`
	Sealed    bool    `json:"sealed"`
	// Causal is how many spans the bundle's causal capture holds.
	Causal int `json:"causal"`
	// Root names the postmortem's root span ("" for rootless snapshots).
	Root string `json:"root,omitempty"`
}

// WatchParams configures the watch op: Count streamed top frames,
// EverySec virtual seconds apart (default 1 s).
type WatchParams struct {
	Count    int     `json:"count"`
	EverySec float64 `json:"everySec,omitempty"`
}

func marshal(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	return b, nil
}

func unmarshal[T any](raw json.RawMessage) (T, error) {
	var v T
	if len(raw) == 0 {
		return v, fmt.Errorf("wire: missing params")
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return v, fmt.Errorf("wire: params: %w", err)
	}
	return v, nil
}
