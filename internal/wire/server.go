package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"vmgrid/internal/core"
	"vmgrid/internal/gis"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/obs"
	"vmgrid/internal/placement"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/telemetry"
	"vmgrid/internal/vfs"
	"vmgrid/internal/vmm"
)

// Server wraps a grid behind a TCP line protocol.
type Server struct {
	mu       sync.Mutex
	grid     *core.Grid
	trace    *obs.Tracer
	sessions map[string]*core.Session

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	// connMu guards conns and draining: the set of live client
	// connections, and whether Close has begun. Draining unblocks idle
	// readers immediately while requests already being dispatched finish
	// and deliver their responses.
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
}

// NewServer creates a server around a fresh grid seeded with seed. The
// grid is traced and telemetered from birth so the "metrics", "spans",
// "top", and "alerts" ops always have data to report. The collector is
// scraped manually after each dispatched operation (never self-ticked:
// a standing tick would keep the kernel's queue non-empty and break the
// "simulation idle" detection in pumpUntil).
func NewServer(seed uint64) *Server {
	grid := core.NewGrid(seed)
	tr := obs.New(grid.Kernel())
	grid.SetTracer(tr)
	grid.EnableFlightRecorder(obs.FlightConfig{})
	if _, err := grid.EnableTelemetry(telemetry.Config{}); err != nil {
		panic(err) // fresh grid: cannot happen
	}
	if err := grid.DefaultAlertRules(0); err != nil {
		panic(err)
	}
	return &Server{
		grid:     grid,
		trace:    tr,
		sessions: make(map[string]*core.Session),
		closed:   make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Grid exposes the underlying grid (for in-process composition).
func (s *Server) Grid() *core.Grid { return s.grid }

// Serve starts accepting connections on addr ("host:port"; ":0" picks a
// free port). It returns immediately; use Addr for the bound address and
// Close to stop.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener and drains the connections: readers blocked
// waiting for a next request unblock immediately, requests already
// being dispatched finish and deliver their responses, and Close
// returns once every handler has exited.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	s.connMu.Lock()
	s.draining = true
	for conn := range s.conns {
		// An expired read deadline aborts the handler's blocking Scan;
		// the response write of an in-flight dispatch is unaffected.
		_ = conn.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// trackConn registers a live connection for drain. If the server is
// already draining, the connection's reads abort immediately.
func (s *Server) trackConn(conn net.Conn) {
	s.connMu.Lock()
	if s.draining {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn net.Conn) {
	s.trackConn(conn)
	defer s.untrackConn(conn)
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64<<10), 4<<20)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		resp := Response{}
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else if req.Op == "watch" {
			// Streaming: many responses under one ID, More set on all but
			// the last. Handled outside dispatch so frames interleave with
			// drain checks.
			if !s.watch(req, enc) {
				return
			}
			continue
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		select {
		case <-s.closed:
			return
		default:
		}
	}
}

// watch streams Count top frames EverySec virtual seconds apart.
// Returns false when the connection should close (encode failure or
// server drain).
func (s *Server) watch(req Request, enc *json.Encoder) bool {
	p, err := unmarshal[WatchParams](req.Params)
	if err != nil {
		_ = enc.Encode(Response{ID: req.ID, Error: err.Error()})
		return true
	}
	if p.Count <= 0 {
		p.Count = 1
	}
	every := sim.DurationOf(p.EverySec)
	if every <= 0 {
		every = sim.Second
	}
	for i := 0; i < p.Count; i++ {
		select {
		case <-s.closed:
			// Draining: tell the client instead of leaving it waiting for
			// frames that will never come.
			_ = enc.Encode(Response{ID: req.ID, Error: "wire: server shutting down"})
			return false
		default:
		}
		resp := s.watchFrame(req.ID, i > 0, every)
		resp.More = i < p.Count-1
		if err := enc.Encode(resp); err != nil {
			return false
		}
	}
	return true
}

// watchFrame advances virtual time by every (after the first frame),
// scrapes, and snapshots — one frame of the stream, under the grid
// lock.
func (s *Server) watchFrame(id int64, advance bool, every sim.Duration) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if advance {
		k := s.grid.Kernel()
		// ErrStalled just means the fabric is idle — the frame still
		// renders current state.
		if err := k.RunUntil(k.Now().Add(every)); err != nil && !errors.Is(err, sim.ErrStalled) {
			return Response{ID: id, Error: err.Error()}
		}
	}
	s.grid.Telemetry().Scrape()
	data, err := marshal(s.top())
	resp := Response{ID: id, Data: data}
	if err != nil {
		resp.Error = err.Error()
	}
	return resp
}

// dispatch runs one operation under the grid lock, then scrapes the
// telemetry collector so the store tracks the fabric op by op (Scrape
// is a no-op when virtual time has not advanced).
func (s *Server) dispatch(req Request) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.handle(req.Op, req.Params)
	s.grid.Telemetry().Scrape()
	resp := Response{ID: req.ID, Data: data}
	if err != nil {
		resp.Error = err.Error()
		resp.Code = ErrorCode(err)
	}
	return resp
}

// pumpUntil drives the simulation until stop() reports true or the
// virtual budget is exhausted.
func (s *Server) pumpUntil(budget sim.Duration, stop func() bool) error {
	k := s.grid.Kernel()
	deadline := k.Now().Add(budget)
	for !stop() {
		if k.Now() >= deadline {
			return fmt.Errorf("wire: operation exceeded %v of virtual time", budget)
		}
		if err := k.RunUntil(k.Now().Add(sim.Second)); err != nil && !stop() {
			// Queue drained with the condition unmet: nothing further
			// can change.
			if errors.Is(err, sim.ErrStalled) {
				return errors.New("wire: simulation idle before operation completed")
			}
			return err
		}
	}
	return nil
}

func (s *Server) handle(op string, params json.RawMessage) (json.RawMessage, error) {
	switch op {
	case "ping":
		return marshal("pong")

	case "add-node":
		p, err := unmarshal[AddNodeParams](params)
		if err != nil {
			return nil, err
		}
		var role core.Role
		for _, r := range p.Roles {
			switch r {
			case "compute":
				role |= core.RoleCompute
			case "image-server":
				role |= core.RoleImageServer
			case "data-server":
				role |= core.RoleDataServer
			case "front-end":
				role |= core.RoleFrontEnd
			default:
				return nil, fmt.Errorf("wire: unknown role %q", r)
			}
		}
		_, err = s.grid.AddNode(core.NodeConfig{
			Name: p.Name, Site: p.Site, Role: role,
			Slots: p.Slots, DHCPPrefix: p.DHCPPrefix,
		})
		if err != nil {
			return nil, err
		}
		return marshal("ok")

	case "connect":
		p, err := unmarshal[ConnectParams](params)
		if err != nil {
			return nil, err
		}
		switch p.Kind {
		case "lan", "":
			err = s.grid.Net().ConnectLAN(p.A, p.B)
		case "wan":
			err = s.grid.Net().ConnectWAN(p.A, p.B)
		default:
			return nil, fmt.Errorf("wire: unknown link kind %q", p.Kind)
		}
		if err != nil {
			return nil, err
		}
		return marshal("ok")

	case "install-image":
		p, err := unmarshal[InstallImageParams](params)
		if err != nil {
			return nil, err
		}
		node := s.grid.Node(p.Node)
		if node == nil {
			return nil, fmt.Errorf("wire: unknown node %q", p.Node)
		}
		if p.DiskBytes == 0 {
			p.DiskBytes = 2 * hw.GB
		}
		if err := node.InstallImage(storage.ImageInfo{
			Name: p.Name, OS: p.OS, DiskBytes: p.DiskBytes, MemBytes: p.MemBytes,
		}); err != nil {
			return nil, err
		}
		return marshal("ok")

	case "create-data":
		p, err := unmarshal[CreateDataParams](params)
		if err != nil {
			return nil, err
		}
		node := s.grid.Node(p.Node)
		if node == nil {
			return nil, fmt.Errorf("wire: unknown node %q", p.Node)
		}
		if err := node.CreateUserData(p.File, p.Bytes); err != nil {
			return nil, err
		}
		return marshal("ok")

	case "new-session":
		p, err := unmarshal[SessionParams](params)
		if err != nil {
			return nil, err
		}
		cfg, err := sessionConfig(p)
		if err != nil {
			return nil, err
		}
		opts, err := sessionOptions(p)
		if err != nil {
			return nil, err
		}
		var sess *core.Session
		var sessErr error
		done := false
		if _, err := s.grid.CreateSession(cfg, func(ss *core.Session, err error) {
			sess, sessErr, done = ss, err, true
		}, opts...); err != nil {
			return nil, err
		}
		if err := s.pumpUntil(4*sim.Hour, func() bool { return done }); err != nil {
			return nil, err
		}
		if sessErr != nil {
			return nil, sessErr
		}
		s.sessions[sess.Name()] = sess
		return marshal(sessionInfo(sess))

	case "run":
		p, err := unmarshal[RunParams](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		w := guest.Workload{
			Name: p.Name, CPUSeconds: p.CPUSeconds,
			PrivPerSec: p.PrivPerSec, MemVirtPerSec: p.MemVirtPerSec,
			Reads: p.Reads, ReadBytes: p.ReadBytes, Mount: p.Mount,
			RootOps: p.RootOps, RootBytes: p.RootBytes,
		}
		var res guest.TaskResult
		done := false
		if err := sess.Run(w, func(r guest.TaskResult) { res = r; done = true }); err != nil {
			return nil, err
		}
		if err := s.pumpUntil(100*sim.Hour, func() bool { return done }); err != nil {
			return nil, err
		}
		if res.Err != nil {
			return nil, res.Err
		}
		return marshal(RunResult{
			Name:       w.Name,
			ElapsedSec: res.Elapsed().Seconds(),
			UserSec:    res.UserSeconds,
			SysSec:     res.SysSeconds(),
			Reads:      res.Reads,
			IOWaitSec:  res.IOWait.Seconds(),
		})

	case "migrate":
		p, err := unmarshal[MigrateParams](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		var migErr error
		done := false
		if err := sess.Migrate(p.Target, func(err error) { migErr = err; done = true }); err != nil {
			return nil, err
		}
		if err := s.pumpUntil(4*sim.Hour, func() bool { return done }); err != nil {
			return nil, err
		}
		if migErr != nil {
			return nil, migErr
		}
		return marshal(sessionInfo(sess))

	case "hibernate":
		p, err := unmarshal[SessionRef](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		var hErr error
		done := false
		if err := sess.Hibernate(func(err error) { hErr = err; done = true }); err != nil {
			return nil, err
		}
		if err := s.pumpUntil(sim.Hour, func() bool { return done }); err != nil {
			return nil, err
		}
		if hErr != nil {
			return nil, hErr
		}
		return marshal(sessionInfo(sess))

	case "wake":
		p, err := unmarshal[SessionRef](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		var wErr error
		done := false
		if err := sess.Wake(func(err error) { wErr = err; done = true }); err != nil {
			return nil, err
		}
		if err := s.pumpUntil(sim.Hour, func() bool { return done }); err != nil {
			return nil, err
		}
		if wErr != nil {
			return nil, wErr
		}
		return marshal(sessionInfo(sess))

	case "shutdown":
		p, err := unmarshal[SessionRef](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		sess.Shutdown()
		delete(s.sessions, p.Session)
		return marshal("ok")

	case "usage":
		p, err := unmarshal[SessionRef](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		u := sess.Usage()
		return marshal(UsageInfo{
			Session:           sess.Name(),
			CPUSeconds:        u.CPUSeconds,
			GuestUserSeconds:  u.GuestUserSeconds,
			Efficiency:        u.Efficiency(),
			DiffBytes:         u.DiffBytes,
			ImageBytesFetched: u.ImageBytesFetched,
			DataBytesFetched:  u.DataBytesFetched,
			WallSeconds:       u.WallSeconds,
		})

	case "query":
		p, err := unmarshal[QueryParams](params)
		if err != nil {
			return nil, err
		}
		entries := s.grid.Info().Select(gis.Kind(p.Kind), nil)
		out := make([]QueryEntry, 0, len(entries))
		for _, e := range entries {
			out = append(out, QueryEntry{Kind: string(e.Kind), Name: e.Name, Attrs: e.Attrs})
		}
		return marshal(out)

	case "status":
		return marshal(s.status())

	case "top":
		// Scrape first so the snapshot reflects this very instant even
		// when no other op has run yet.
		s.grid.Telemetry().Scrape()
		return marshal(s.top())

	case "alerts":
		s.grid.Telemetry().Scrape()
		col := s.grid.Telemetry()
		info := AlertsInfo{Rules: []AlertRule{}, Firings: []AlertInfo{}}
		for _, r := range col.Rules() {
			info.Rules = append(info.Rules, AlertRule{Name: r.Name, Expr: r.Expr})
		}
		for _, f := range col.Firings() {
			info.Firings = append(info.Firings, alertInfo(f))
		}
		return marshal(info)

	case "metrics":
		return marshal(s.trace.Metrics().Snapshot())

	case "spans":
		spans := s.trace.Spans()
		if spans == nil {
			spans = []obs.SpanRecord{}
		}
		return marshal(spans)

	case "trace":
		p, err := unmarshal[SessionRef](params)
		if err != nil {
			return nil, err
		}
		sess, ok := s.sessions[p.Session]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownSession, p.Session)
		}
		ctx := sess.TraceContext()
		info := TraceInfo{Session: sess.Name(), Trace: ctx.Trace.String(), Spans: []obs.SpanRecord{}}
		if ctx.Valid() {
			for _, sp := range s.trace.Spans() {
				if sp.Trace == ctx.Trace {
					info.Spans = append(info.Spans, sp)
				}
			}
			info.Report = obs.Analyze(info.Spans, ctx)
		}
		return marshal(info)

	case "incidents":
		out := []IncidentInfo{}
		for _, inc := range s.grid.Recorder().Incidents() {
			out = append(out, incidentInfo(inc))
		}
		return marshal(out)

	case "incident":
		p, err := unmarshal[IncidentRef](params)
		if err != nil {
			return nil, err
		}
		inc := s.grid.Recorder().Incident(p.ID)
		if inc == nil {
			return nil, fmt.Errorf("wire: unknown incident %q", p.ID)
		}
		return marshal(inc)

	default:
		return nil, fmt.Errorf("wire: unknown op %q", op)
	}
}

func sessionConfig(p SessionParams) (core.SessionConfig, error) {
	cfg := core.SessionConfig{
		User: p.User, FrontEnd: p.FrontEnd, Image: p.Image,
		Site: p.Site, DataNode: p.DataNode, DataFile: p.DataFile,
		HomeNode: p.HomeNode,
	}
	switch p.Mode {
	case "reboot", "":
		cfg.Mode = vmm.ColdBoot
	case "restore":
		cfg.Mode = vmm.WarmRestore
	default:
		return cfg, fmt.Errorf("wire: unknown mode %q", p.Mode)
	}
	switch p.Disk {
	case "non-persistent", "":
		cfg.Disk = core.NonPersistent
	case "persistent":
		cfg.Disk = core.Persistent
	default:
		return cfg, fmt.Errorf("wire: unknown disk policy %q", p.Disk)
	}
	switch p.Access {
	case "local", "":
		cfg.Access = core.AccessLocal
	case "loopback":
		cfg.Access = core.AccessLoopback
	case "on-demand":
		cfg.Access = core.AccessOnDemand
	case "staged":
		cfg.Access = core.AccessStaged
	default:
		return cfg, fmt.Errorf("wire: unknown access %q", p.Access)
	}
	return cfg, nil
}

// sessionOptions maps the wire-level placement knobs onto CreateSession
// functional options.
func sessionOptions(p SessionParams) ([]core.CreateOption, error) {
	var opts []core.CreateOption
	if p.Place != "" {
		placer, err := placement.ByName(p.Place)
		if err != nil {
			return nil, fmt.Errorf("wire: %v", err)
		}
		opts = append(opts, core.WithPlacer(placer))
	}
	if p.NodeHint != "" {
		opts = append(opts, core.WithNodeHint(p.NodeHint))
	}
	return opts, nil
}

func sessionInfo(sess *core.Session) SessionInfo {
	info := SessionInfo{
		Name:        sess.Name(),
		State:       sess.State().String(),
		Addr:        sess.Addr(),
		ImageServer: sess.ImageServer(),
		LocalUser:   sess.LocalUser(),
		Events:      map[string]float64{},
	}
	if sess.Node() != nil {
		info.Node = sess.Node().Name()
		info.Console = sess.Console()
	}
	for _, e := range sess.Events() {
		info.Events[e.Step] = e.At.Seconds()
	}
	if ready, sub := sess.EventAt("ready"), sess.EventAt("submitted"); ready >= 0 && sub >= 0 {
		info.StartupSec = ready.Sub(sub).Seconds()
	}
	return info
}

func (s *Server) status() StatusInfo {
	st := StatusInfo{VirtualSec: s.grid.Kernel().Now().Seconds()}
	var names []string
	for _, e := range s.grid.Info().Select(gis.KindHost, nil) {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := s.grid.Node(name)
		if n == nil {
			continue
		}
		st.Nodes = append(st.Nodes, NodeInfo{
			Name:     n.Name(),
			Site:     n.Site(),
			Slots:    n.Slots(),
			Runnable: n.Host().Runnable(),
			Files:    n.Store().Files(),
		})
	}
	var sessNames []string
	for name := range s.sessions {
		sessNames = append(sessNames, name)
	}
	sort.Strings(sessNames)
	for _, name := range sessNames {
		st.Sessions = append(st.Sessions, sessionInfo(s.sessions[name]))
	}
	return st
}

func incidentInfo(inc *obs.Incident) IncidentInfo {
	row := IncidentInfo{
		ID:        inc.ID,
		Trigger:   inc.Trigger,
		Subject:   inc.Subject,
		AtSec:     inc.At.Seconds(),
		SealedSec: inc.SealedAt.Seconds(),
		Sealed:    inc.Sealed(),
		Causal:    len(inc.Causal),
	}
	if inc.Report != nil {
		row.Root = inc.Report.Root
	}
	return row
}

func alertInfo(f telemetry.Firing) AlertInfo {
	return AlertInfo{
		Rule:        f.Rule,
		Series:      f.Series,
		AtSec:       f.At.Seconds(),
		Value:       f.Value,
		ResolvedSec: f.ResolvedAt.Seconds(),
	}
}

// top builds one grid snapshot from live fabric state plus the active
// alert set. Caller holds s.mu.
func (s *Server) top() TopInfo {
	info := TopInfo{
		VirtualSec: s.grid.Kernel().Now().Seconds(),
		Scrapes:    s.grid.Telemetry().Scrapes(),
		Nodes:      []TopNode{},
		Sessions:   []TopSession{},
		Alerts:     []AlertInfo{},
	}
	for _, name := range s.grid.NodeNames() {
		n := s.grid.Node(name)
		row := TopNode{Name: n.Name(), Site: n.Site(), Crashed: n.Crashed()}
		if !n.Crashed() {
			row.Slots = n.Slots()
			row.Runnable = n.Host().Runnable()
			row.Load = n.Host().LoadAverage()
		}
		if db := s.grid.Telemetry().DB(); db != nil {
			if sr := db.Lookup("node.predicted_load{node=" + name + "}"); sr != nil && sr.Len() > 0 {
				row.PredictedLoad = sr.Last().V
			}
		}
		info.Nodes = append(info.Nodes, row)
	}
	var sessNames []string
	for name := range s.sessions {
		sessNames = append(sessNames, name)
	}
	sort.Strings(sessNames)
	for _, name := range sessNames {
		sess := s.sessions[name]
		row := TopSession{Name: sess.Name(), State: sess.State().String()}
		if sess.Node() != nil {
			row.Node = sess.Node().Name()
		}
		u := sess.Usage()
		if u.GuestUserSeconds > 0 {
			row.Slowdown = u.CPUSeconds / u.GuestUserSeconds
		}
		row.GuestSec = u.GuestUserSeconds
		row.WallSeconds = u.WallSeconds
		row.Epoch = sess.Epoch()
		var hits, misses, retries uint64
		for _, c := range []*vfs.Client{sess.DataClient(), sess.ImageClient()} {
			if c == nil {
				continue
			}
			hits += c.Hits()
			misses += c.Misses()
			retries += c.Retries()
		}
		if hits+misses > 0 {
			row.VFSHitRate = float64(hits) / float64(hits+misses)
		}
		row.VFSRetries = retries
		info.Sessions = append(info.Sessions, row)
	}
	if p := s.grid.ChunkPlane(); p != nil {
		st := p.Stats()
		info.Staging = &TopStaging{
			ChunkHits:   st.Hits,
			ChunkMisses: st.Misses,
			HitRate:     st.HitRate(),
			BytesSaved:  st.BytesSaved,
			Evictions:   st.Evictions,
		}
	}
	if cl := s.grid.Info().Cluster(); cl != nil {
		for i := 0; i < cl.Size(); i++ {
			info.Replicas = append(info.Replicas, TopReplica{
				Node:   cl.Node(i),
				LagSec: cl.Lag(i).Seconds(),
			})
		}
	}
	for _, f := range s.grid.Telemetry().Active() {
		info.Alerts = append(info.Alerts, alertInfo(f))
	}
	return info
}
