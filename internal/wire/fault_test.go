package wire

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"vmgrid/internal/retry"
	"vmgrid/internal/sim"
)

// TestCloseDrainsIdleConnections: Close must not wait for clients to
// hang up. An idle connection's handler is blocked in Scan; draining
// aborts that read so Close returns promptly.
func TestCloseDrainsIdleConnections(t *testing.T) {
	srv := NewServer(1)
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// The client now sits idle; its handler is parked in Scan.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle connection; drain did not abort the blocked read")
	}
	// The drained server no longer answers.
	if err := c.Call("ping", nil, nil); err == nil {
		t.Error("call succeeded against a closed server")
	}
}

// TestCloseRacesNewConnections: a connection accepted around the moment
// of Close must also drain (the draining flag covers registrations that
// miss the Close-time sweep).
func TestCloseRacesNewConnections(t *testing.T) {
	for i := 0; i < 10; i++ {
		srv := NewServer(1)
		if err := srv.Serve("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr()
		go func() {
			if c, err := Dial(addr); err == nil {
				_ = c.Ping()
				defer c.Close()
			}
		}()
		done := make(chan struct{})
		go func() { _ = srv.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Close hung against a racing connection")
		}
	}
}

// TestClientReconnectsAfterServerRestart: a client handle survives its
// server going away and coming back on the same address — the broken
// connection is re-dialed with backoff on a later Call.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv1 := NewServer(1)
	if err := srv1.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(2)
	if err := srv2.Serve(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { _ = srv2.Close() })

	// The first call after the restart may surface the stale
	// connection's ambiguous failure (reply lost after a buffered send
	// is not retried); the one after must have re-dialed.
	var pingErr error
	for i := 0; i < 5; i++ {
		if pingErr = c.Ping(); pingErr == nil {
			break
		}
	}
	if pingErr != nil {
		t.Fatalf("client never reconnected: %v", pingErr)
	}
}

// TestCallTimeoutOnSilentServer: a server that accepts but never
// responds must not hang the client past its per-attempt deadline.
func TestCallTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn) }() // swallow requests, never reply
		}
	}()
	c, err := DialConfig(ln.Addr().String(), Config{
		CallTimeout: 200 * time.Millisecond,
		Retry:       retry.Policy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("ping against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call took %v; read deadline not applied", elapsed)
	}
}

// TestDialRetriesAreBounded: with nothing listening, Call fails after
// its attempt budget with a dial error, not an infinite retry loop.
func TestDialRetriesAreBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	c, err := DialConfig(addr, Config{
		DialTimeout: 200 * time.Millisecond,
		Retry:       retry.Policy{MaxAttempts: 2, Backoff: 10 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = ln.Close() // server vanishes
	start := time.Now()
	var lastErr error
	for i := 0; i < 3; i++ {
		if lastErr = c.Ping(); lastErr == nil {
			t.Fatal("ping succeeded with nothing listening")
		}
	}
	if !strings.Contains(lastErr.Error(), "dial") {
		t.Errorf("err = %v, want a dial failure once the connection is known-broken", lastErr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("bounded retries took %v", elapsed)
	}
}
