package sched

import (
	"fmt"
	"strconv"
	"strings"

	"vmgrid/internal/hostos"
	"vmgrid/internal/sim"
)

// The paper proposes "a specialized language for specifying the
// [resource owner's] constraints, and a toolchain for enforcing
// constraints specified in the language when scheduling virtual
// machines on the host operating system". Policy is that language's
// AST; Compile is the toolchain.
//
// Grammar (one directive per line, '#' comments):
//
//	policy <name>
//	reserve <percent>%          # capacity held back for the owner
//	limit <proc> <percent>%     # hard cap, enforced by duty-cycling
//	weight <proc> <number>      # proportional share under contention
//
// Example:
//
//	policy desktop-owner
//	reserve 25%
//	limit vmm:guest-a 50%
//	weight vmm:guest-b 2

// RuleKind distinguishes policy directives.
type RuleKind int

// Rule kinds.
const (
	RuleLimit RuleKind = iota + 1
	RuleWeight
)

// Rule is one per-process directive.
type Rule struct {
	Kind   RuleKind
	Target string
	// Value is a fraction for RuleLimit, a weight for RuleWeight.
	Value float64
}

// Policy is a parsed constraint specification.
type Policy struct {
	Name    string
	Reserve float64 // fraction of the machine held for the owner
	Rules   []Rule
}

// ParsePolicy parses the constraint language.
func ParsePolicy(src string) (Policy, error) {
	var p Policy
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "policy":
			if len(fields) != 2 {
				return p, fmt.Errorf("sched: line %d: policy <name>", lineNo+1)
			}
			p.Name = fields[1]
		case "reserve":
			if len(fields) != 2 {
				return p, fmt.Errorf("sched: line %d: reserve <percent>%%", lineNo+1)
			}
			v, err := parsePercent(fields[1])
			if err != nil {
				return p, fmt.Errorf("sched: line %d: %w", lineNo+1, err)
			}
			p.Reserve = v
		case "limit":
			if len(fields) != 3 {
				return p, fmt.Errorf("sched: line %d: limit <proc> <percent>%%", lineNo+1)
			}
			v, err := parsePercent(fields[2])
			if err != nil {
				return p, fmt.Errorf("sched: line %d: %w", lineNo+1, err)
			}
			p.Rules = append(p.Rules, Rule{Kind: RuleLimit, Target: fields[1], Value: v})
		case "weight":
			if len(fields) != 3 {
				return p, fmt.Errorf("sched: line %d: weight <proc> <number>", lineNo+1)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || v <= 0 {
				return p, fmt.Errorf("sched: line %d: bad weight %q", lineNo+1, fields[2])
			}
			p.Rules = append(p.Rules, Rule{Kind: RuleWeight, Target: fields[1], Value: v})
		default:
			return p, fmt.Errorf("sched: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

func parsePercent(s string) (float64, error) {
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad percentage %q", s)
	}
	if v < 0 || v > 100 {
		return 0, fmt.Errorf("percentage %v out of [0,100]", v)
	}
	return v / 100, nil
}

// Validate checks cross-directive consistency.
func (p Policy) Validate() error {
	var limits float64
	seen := map[string]RuleKind{}
	for _, r := range p.Rules {
		if prev, dup := seen[r.Target]; dup && prev == r.Kind {
			return fmt.Errorf("sched: duplicate %v rule for %q", r.Kind, r.Target)
		}
		seen[r.Target] = r.Kind
		if r.Kind == RuleLimit {
			limits += r.Value
		}
	}
	if p.Reserve+0 > 1 {
		return fmt.Errorf("sched: reserve %v exceeds the machine", p.Reserve)
	}
	return nil
}

// Enforcement is a compiled, applied policy: the set of live mechanisms
// (weights set, modulators running, owner reservation process) enforcing
// it on one host.
type Enforcement struct {
	policy      Policy
	modulators  map[string]*Modulator
	reserveProc *hostos.Process
}

// Policy returns the source policy.
func (e *Enforcement) Policy() Policy { return e.policy }

// Modulator returns the duty-cycler enforcing a limit rule, if any.
func (e *Enforcement) Modulator(target string) *Modulator { return e.modulators[target] }

// Release tears down the enforcement (stops modulators, drops the
// reservation).
func (e *Enforcement) Release() {
	for _, m := range e.modulators {
		m.Stop()
	}
	if e.reserveProc != nil {
		e.reserveProc.Exit()
		e.reserveProc = nil
	}
}

// Compile applies a policy to a host: weight rules set scheduler
// weights, limit rules attach duty-cycle modulators, and a reserve
// directive spawns an owner-priority process holding back capacity.
// Targets name host processes (hostos.Process.Name).
func Compile(k *sim.Kernel, h *hostos.Host, p Policy) (*Enforcement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	byName := make(map[string]*hostos.Process)
	for _, proc := range h.Procs() {
		byName[proc.Name()] = proc
	}
	e := &Enforcement{policy: p, modulators: make(map[string]*Modulator)}
	for _, r := range p.Rules {
		proc, ok := byName[r.Target]
		if !ok {
			e.Release()
			return nil, fmt.Errorf("sched: policy %q: no process %q on %s", p.Name, r.Target, h.Name())
		}
		switch r.Kind {
		case RuleWeight:
			proc.SetWeight(r.Value)
		case RuleLimit:
			m, err := NewModulator(k, proc, r.Value, 200*sim.Millisecond)
			if err != nil {
				e.Release()
				return nil, err
			}
			m.Start()
			e.modulators[r.Target] = m
		}
	}
	if p.Reserve > 0 {
		// The owner's interactive work is modeled as a high-weight
		// process demanding the reserved fraction.
		e.reserveProc = h.Spawn("owner-reserve")
		e.reserveProc.SetWeight(1000)
		e.reserveProc.SetDemand(p.Reserve)
	}
	return e, nil
}
