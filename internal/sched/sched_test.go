package sched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
)

func TestLotteryProportionalShares(t *testing.T) {
	l, err := NewLottery(sim.NewRNG(1), 700, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	shares := Shares(l, 100000)
	want := []float64{0.7, 0.2, 0.1}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 0.01 {
			t.Errorf("client %d share = %v, want ~%v", i, shares[i], want[i])
		}
	}
	wins := l.Wins()
	var total uint64
	for _, w := range wins {
		total += w
	}
	if total != 100000 {
		t.Errorf("total wins = %d", total)
	}
}

func TestLotteryValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewLottery(rng); err == nil {
		t.Error("empty lottery accepted")
	}
	if _, err := NewLottery(rng, -1, 2); err == nil {
		t.Error("negative tickets accepted")
	}
	if _, err := NewLottery(rng, 0, 0); err == nil {
		t.Error("zero-ticket lottery accepted")
	}
}

func TestLotterySetShare(t *testing.T) {
	l, err := NewLottery(sim.NewRNG(2), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetShare(0, 3); err != nil {
		t.Fatal(err)
	}
	shares := Shares(l, 50000)
	if math.Abs(shares[0]-0.75) > 0.02 {
		t.Errorf("share after SetShare = %v, want ~0.75", shares[0])
	}
	if err := l.SetShare(5, 1); err == nil {
		t.Error("out-of-range SetShare accepted")
	}
}

func TestWFQExactShares(t *testing.T) {
	w, err := NewWFQ(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := Shares(w, 4000)
	if math.Abs(shares[0]-0.75) > 0.001 || math.Abs(shares[1]-0.25) > 0.001 {
		t.Errorf("WFQ shares = %v, want [0.75 0.25] exactly-ish", shares)
	}
}

func TestWFQShortTermFairnessBeatsLottery(t *testing.T) {
	// Over short windows, WFQ's worst-case deviation from the ideal
	// share must be smaller than the lottery's — the determinism
	// argument for compiled real-time-ish schedules.
	const window = 100
	const windows = 200
	wfq, _ := NewWFQ(1, 1)
	lot, _ := NewLottery(sim.NewRNG(3), 1, 1)
	maxDev := func(s QuantumScheduler) float64 {
		worst := 0.0
		for w := 0; w < windows; w++ {
			c0 := 0
			for q := 0; q < window; q++ {
				if s.Next() == 0 {
					c0++
				}
			}
			if d := math.Abs(float64(c0)/window - 0.5); d > worst {
				worst = d
			}
		}
		return worst
	}
	if devW, devL := maxDev(wfq), maxDev(lot); devW >= devL {
		t.Errorf("WFQ worst window deviation %v not better than lottery %v", devW, devL)
	}
}

func TestWFQValidation(t *testing.T) {
	if _, err := NewWFQ(); err == nil {
		t.Error("empty WFQ accepted")
	}
	if _, err := NewWFQ(1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	w, _ := NewWFQ(1, 1)
	if err := w.SetShare(0, -1); err == nil {
		t.Error("negative SetShare accepted")
	}
}

// Property: lottery shares converge to ticket ratios for arbitrary
// ticket vectors.
func TestLotteryConvergenceProperty(t *testing.T) {
	prop := func(rawA, rawB uint8) bool {
		a := float64(rawA%20) + 1
		b := float64(rawB%20) + 1
		l, err := NewLottery(sim.NewRNG(uint64(rawA)*256+uint64(rawB)), a, b)
		if err != nil {
			return false
		}
		shares := Shares(l, 30000)
		want := a / (a + b)
		return math.Abs(shares[0]-want) < 0.03
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestModulatorEnforcesShare(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	proc := h.Spawn("vm")
	m, err := NewModulator(k, proc, 0.4, 200*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	var doneAt sim.Time = -1
	proc.RunWork(8, func() { doneAt = k.Now() })
	if err := k.RunUntil(sim.Time(sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("work never finished under modulation")
	}
	// 8 work units at 40% duty cycle ≈ 20 s.
	if math.Abs(doneAt.Seconds()-20) > 1.0 {
		t.Errorf("modulated completion at %vs, want ~20s", doneAt.Seconds())
	}
	m.Stop()
	if proc.Stopped() {
		t.Error("Stop left the process stopped")
	}
}

func TestModulatorExtremes(t *testing.T) {
	k := sim.NewKernel(1)
	h, _ := hostos.New(k, hw.ReferenceMachine("n"))
	full := h.Spawn("full")
	m1, err := NewModulator(k, full, 1.0, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	var fullAt sim.Time
	full.RunWork(2, func() { fullAt = k.Now() })
	if err := k.RunUntil(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if math.Abs(fullAt.Seconds()-2) > 0.05 {
		t.Errorf("share-1.0 modulation slowed work: %v", fullAt)
	}
	m1.Stop()

	zero := h.Spawn("zero")
	m0, err := NewModulator(k, zero, 0, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m0.Start()
	finished := false
	zero.RunWork(0.5, func() { finished = true })
	_ = k.RunUntil(k.Now().Add(5 * sim.Second))
	if finished {
		t.Error("share-0 process made progress")
	}
	m0.Stop()
	k.Run()
	if !finished {
		t.Error("work stuck after modulator release")
	}
}

func TestModulatorValidation(t *testing.T) {
	k := sim.NewKernel(1)
	h, _ := hostos.New(k, hw.ReferenceMachine("n"))
	p := h.Spawn("x")
	if _, err := NewModulator(k, p, 1.5, sim.Second); err == nil {
		t.Error("share > 1 accepted")
	}
	if _, err := NewModulator(k, p, 0.5, 0); err == nil {
		t.Error("zero period accepted")
	}
	m, _ := NewModulator(k, p, 0.5, sim.Second)
	if err := m.SetShare(-0.1); err == nil {
		t.Error("negative SetShare accepted")
	}
	if err := m.SetShare(0.8); err != nil || m.Share() != 0.8 {
		t.Error("SetShare failed")
	}
}

const examplePolicy = `
# Desktop owner policy: keep a quarter for interactive use,
# cap the untrusted guest, favor the paying one.
policy desktop-owner
reserve 25%
limit vmm:guest-a 50%
weight vmm:guest-b 2
`

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy(examplePolicy)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "desktop-owner" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.Reserve != 0.25 {
		t.Errorf("Reserve = %v", p.Reserve)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("Rules = %v", p.Rules)
	}
	if p.Rules[0] != (Rule{Kind: RuleLimit, Target: "vmm:guest-a", Value: 0.5}) {
		t.Errorf("rule 0 = %+v", p.Rules[0])
	}
	if p.Rules[1] != (Rule{Kind: RuleWeight, Target: "vmm:guest-b", Value: 2}) {
		t.Errorf("rule 1 = %+v", p.Rules[1])
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"policy",                       // missing name
		"reserve",                      // missing value
		"reserve 150%",                 // out of range
		"limit vm1",                    // missing value
		"limit vm1 -5%",                // negative
		"weight vm1 zero",              // not a number
		"weight vm1 0",                 // non-positive
		"frobnicate vm1 3",             // unknown directive
		"limit vm1 10%\nlimit vm1 20%", // duplicate rule
	}
	for _, src := range bad {
		if _, err := ParsePolicy(src); err == nil {
			t.Errorf("ParsePolicy accepted %q", src)
		}
	}
}

func TestCompileAppliesPolicy(t *testing.T) {
	k := sim.NewKernel(1)
	h, err := hostos.New(k, hw.ReferenceMachine("n"))
	if err != nil {
		t.Fatal(err)
	}
	a := h.Spawn("vmm:guest-a")
	b := h.Spawn("vmm:guest-b")
	p, err := ParsePolicy(examplePolicy)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(k, h, p)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release()

	if b.Weight() != 2 {
		t.Errorf("weight rule not applied: %v", b.Weight())
	}
	if e.Modulator("vmm:guest-a") == nil {
		t.Fatal("limit rule did not attach a modulator")
	}

	// guest-a is capped at 50% even with the machine otherwise idle
	// (modulo the owner reservation taking its cut).
	var doneAt sim.Time = -1
	a.RunWork(4, func() { doneAt = k.Now() })
	if err := k.RunUntil(sim.Time(sim.Minute)); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("capped work never finished")
	}
	if doneAt.Seconds() < 7.5 {
		t.Errorf("guest-a finished 4 units in %vs; 50%% cap not enforced", doneAt.Seconds())
	}
}

func TestCompileUnknownTarget(t *testing.T) {
	k := sim.NewKernel(1)
	h, _ := hostos.New(k, hw.ReferenceMachine("n"))
	p, err := ParsePolicy("limit ghost 10%")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(k, h, p); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Compile with unknown target = %v", err)
	}
}

func TestReserveHoldsCapacity(t *testing.T) {
	k := sim.NewKernel(1)
	h, _ := hostos.New(k, hw.ReferenceMachine("n"))
	vm := h.Spawn("vm")
	p, err := ParsePolicy("reserve 50%")
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(k, h, p)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time = -1
	vm.RunWork(2, func() { doneAt = k.Now() })
	_ = k.RunUntil(sim.Time(sim.Minute)) // queue may drain once the work completes
	if doneAt < 0 {
		t.Fatal("reserved work never finished")
	}
	// With half the machine reserved, 2 units take ~4 s.
	if doneAt.Seconds() < 3.5 {
		t.Errorf("reserved capacity leaked to the VM: done at %vs", doneAt.Seconds())
	}
	e.Release()
	var secondAt sim.Time = -1
	start := k.Now()
	vm.RunWork(2, func() { secondAt = k.Now() })
	k.Run()
	if got := secondAt.Sub(start).Seconds(); math.Abs(got-2) > 0.1 {
		t.Errorf("after Release, 2 units took %vs, want ~2s", got)
	}
}
