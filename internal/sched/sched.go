// Package sched implements the resource-control mechanisms the paper
// proposes for scheduling virtual machines under resource-owner
// constraints (§3.2): proportional-share schedulers (lottery scheduling
// and weighted fair queueing), a coarse-grained SIGSTOP/SIGCONT duty-
// cycle modulator for unmodified host schedulers, and a small constraint
// language that compiles owner policies into scheduler parameters.
package sched

import (
	"fmt"

	"vmgrid/internal/hostos"
	"vmgrid/internal/sim"
)

// QuantumScheduler picks which client runs each quantum. Implementations
// must be deterministic given their inputs (lottery draws come from an
// injected RNG).
type QuantumScheduler interface {
	// Name identifies the algorithm.
	Name() string
	// Clients returns the number of clients.
	Clients() int
	// Next returns the index of the client to run for the next quantum.
	Next() int
	// SetShare changes a client's entitlement (tickets or weight).
	SetShare(client int, share float64) error
}

// Lottery is Waldspurger-style lottery scheduling: each client holds
// tickets; every quantum a uniformly random ticket picks the winner.
// Expected CPU shares are proportional to ticket counts.
type Lottery struct {
	rng     *sim.RNG
	tickets []float64
	total   float64
	wins    []uint64
}

// NewLottery creates a lottery scheduler with the given ticket counts.
func NewLottery(rng *sim.RNG, tickets ...float64) (*Lottery, error) {
	if len(tickets) == 0 {
		return nil, fmt.Errorf("sched: lottery with no clients")
	}
	l := &Lottery{rng: rng, tickets: append([]float64(nil), tickets...), wins: make([]uint64, len(tickets))}
	for i, t := range tickets {
		if t < 0 {
			return nil, fmt.Errorf("sched: client %d holds %v tickets", i, t)
		}
		l.total += t
	}
	if l.total <= 0 {
		return nil, fmt.Errorf("sched: lottery with zero total tickets")
	}
	return l, nil
}

// Name implements QuantumScheduler.
func (l *Lottery) Name() string { return "lottery" }

// Clients implements QuantumScheduler.
func (l *Lottery) Clients() int { return len(l.tickets) }

// SetShare implements QuantumScheduler.
func (l *Lottery) SetShare(client int, share float64) error {
	if client < 0 || client >= len(l.tickets) || share < 0 {
		return fmt.Errorf("sched: bad SetShare(%d, %v)", client, share)
	}
	l.total += share - l.tickets[client]
	l.tickets[client] = share
	return nil
}

// Next implements QuantumScheduler by drawing a ticket.
func (l *Lottery) Next() int {
	draw := l.rng.Float64() * l.total
	var acc float64
	for i, t := range l.tickets {
		acc += t
		if draw < acc {
			l.wins[i]++
			return i
		}
	}
	// Floating-point edge: last client with tickets wins.
	for i := len(l.tickets) - 1; i >= 0; i-- {
		if l.tickets[i] > 0 {
			l.wins[i]++
			return i
		}
	}
	return 0
}

// Wins returns how many quanta each client has won.
func (l *Lottery) Wins() []uint64 { return append([]uint64(nil), l.wins...) }

// WFQ is weighted fair queueing adapted to CPU quanta: each client has a
// virtual time advanced by quantum/weight when it runs; the client with
// the smallest virtual time runs next. Deterministic, with bounded
// short-term unfairness (unlike the lottery's probabilistic shares).
type WFQ struct {
	weights []float64
	vtime   []float64
	runs    []uint64
}

// NewWFQ creates a WFQ scheduler with the given weights.
func NewWFQ(weights ...float64) (*WFQ, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sched: wfq with no clients")
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: client %d weight %v", i, w)
		}
	}
	return &WFQ{
		weights: append([]float64(nil), weights...),
		vtime:   make([]float64, len(weights)),
		runs:    make([]uint64, len(weights)),
	}, nil
}

// Name implements QuantumScheduler.
func (w *WFQ) Name() string { return "wfq" }

// Clients implements QuantumScheduler.
func (w *WFQ) Clients() int { return len(w.weights) }

// SetShare implements QuantumScheduler.
func (w *WFQ) SetShare(client int, share float64) error {
	if client < 0 || client >= len(w.weights) || share <= 0 {
		return fmt.Errorf("sched: bad SetShare(%d, %v)", client, share)
	}
	w.weights[client] = share
	return nil
}

// Next implements QuantumScheduler.
func (w *WFQ) Next() int {
	best := 0
	for i := 1; i < len(w.vtime); i++ {
		if w.vtime[i] < w.vtime[best] {
			best = i
		}
	}
	w.vtime[best] += 1 / w.weights[best]
	w.runs[best]++
	return best
}

// Runs returns how many quanta each client has received.
func (w *WFQ) Runs() []uint64 { return append([]uint64(nil), w.runs...) }

// Shares runs a scheduler for n quanta and returns the fraction of
// quanta each client received — the enforcement-accuracy measurement of
// the scheduling ablation.
func Shares(s QuantumScheduler, n int) []float64 {
	counts := make([]int, s.Clients())
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// Modulator enforces a CPU share on an unmodified host scheduler by
// duty-cycling a process with stop/continue signals — the paper's
// "modulate the priority of virtual machine processes under the regular
// Linux scheduler, using SIGSTOP/SIGCONT signal delivery". It is coarse
// (period-granular) but needs no kernel support.
type Modulator struct {
	k      *sim.Kernel
	proc   *hostos.Process
	period sim.Duration
	share  float64

	running bool
	stopped bool
	next    sim.EventID
}

// NewModulator prepares (but does not start) duty-cycling proc to the
// given share of each period.
func NewModulator(k *sim.Kernel, proc *hostos.Process, share float64, period sim.Duration) (*Modulator, error) {
	if share < 0 || share > 1 {
		return nil, fmt.Errorf("sched: modulator share %v", share)
	}
	if period <= 0 {
		return nil, fmt.Errorf("sched: modulator period %v", period)
	}
	return &Modulator{k: k, proc: proc, period: period, share: share}, nil
}

// Share returns the enforced share.
func (m *Modulator) Share() float64 { return m.share }

// SetShare adjusts the enforced share (takes effect next period).
func (m *Modulator) SetShare(share float64) error {
	if share < 0 || share > 1 {
		return fmt.Errorf("sched: modulator share %v", share)
	}
	m.share = share
	return nil
}

// Start begins enforcement.
func (m *Modulator) Start() {
	if m.running {
		return
	}
	m.running = true
	m.tick()
}

// Stop ends enforcement, leaving the process running.
func (m *Modulator) Stop() {
	if !m.running {
		return
	}
	m.running = false
	m.k.Cancel(m.next)
	m.next = sim.EventID{}
	if m.stopped {
		m.proc.Cont()
		m.stopped = false
	}
}

func (m *Modulator) tick() {
	if !m.running {
		return
	}
	runFor := sim.Duration(float64(m.period) * m.share)
	stopFor := m.period - runFor
	if m.stopped {
		m.proc.Cont()
		m.stopped = false
	}
	if stopFor <= 0 {
		m.next = m.k.After(m.period, m.tick)
		return
	}
	if runFor <= 0 {
		m.proc.Stop()
		m.stopped = true
		m.next = m.k.After(m.period, m.tick)
		return
	}
	m.next = m.k.After(runFor, func() {
		if !m.running {
			return
		}
		m.proc.Stop()
		m.stopped = true
		m.next = m.k.After(stopFor, m.tick)
	})
}
