package sched_test

import (
	"fmt"

	"vmgrid/internal/sched"
	"vmgrid/internal/sim"
)

// The owner-constraint language compiles into scheduler parameters —
// weights for proportional sharing, caps enforced by duty-cycling, and
// a reservation for the machine's owner.
func ExampleParsePolicy() {
	policy, err := sched.ParsePolicy(`
# Keep a quarter for interactive use; cap the untrusted guest.
policy desktop-owner
reserve 25%
limit vmm:guest-a 50%
weight vmm:guest-b 2
`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	fmt.Printf("policy %s: reserve %.0f%%, %d rules\n",
		policy.Name, policy.Reserve*100, len(policy.Rules))
	for _, r := range policy.Rules {
		kind := "limit"
		if r.Kind == sched.RuleWeight {
			kind = "weight"
		}
		fmt.Printf("  %s %s %.2g\n", kind, r.Target, r.Value)
	}
	// Output:
	// policy desktop-owner: reserve 25%, 2 rules
	//   limit vmm:guest-a 0.5
	//   weight vmm:guest-b 2
}

// Lottery scheduling gives probabilistic proportional shares: over many
// quanta, clients win in proportion to their tickets.
func ExampleNewLottery() {
	lot, err := sched.NewLottery(sim.NewRNG(1), 3, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	shares := sched.Shares(lot, 100000)
	fmt.Printf("client A ~%.0f%%, client B ~%.0f%%\n", shares[0]*100, shares[1]*100)
	// Output:
	// client A ~75%, client B ~25%
}
