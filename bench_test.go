// Package vmgrid's top-level benchmarks regenerate the paper's
// evaluation, one benchmark per table or figure, plus the ablations
// indexed in DESIGN.md. Each benchmark iteration runs the full
// experiment in simulated time; the reported ns/op is host time to
// simulate it, and the experiment benchmarks also report samples/sec —
// simulation samples completed per host second — which is the
// paper-meaningful throughput number to track across commits (the
// paper-comparable outputs are printed in the tables via cmd/gridbench
// and recorded in EXPERIMENTS.md).
package vmgrid_test

import (
	"fmt"
	"runtime"
	"testing"

	"vmgrid/internal/chunk"
	"vmgrid/internal/experiments"
	"vmgrid/internal/gram"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/netsim"
	"vmgrid/internal/placement"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
)

// fig1Samples is the per-scenario sample count the benchmarks use (the
// paper uses 1000; 200 keeps iterations short without changing shape).
const fig1Samples = 200

// BenchmarkFigure1Microbenchmark regenerates Figure 1: the twelve
// (load class × load placement × test placement) slowdown bars.
func BenchmarkFigure1Microbenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(experiments.Fig1Config{
			Seed: uint64(i + 1), Samples: fig1Samples, TaskSeconds: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 12*fig1Samples)
}

// BenchmarkTable1Macrobenchmark regenerates Table 1: SPECseis and
// SPECclimate on physical hardware, VM with local state, and VM with
// state over the grid virtual file system.
func BenchmarkTable1Macrobenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(uint64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 6)
}

// BenchmarkTable2Startup regenerates Table 2: globusrun-driven VM
// startup for reboot/restore × persistent/DiskFS/LoopbackNFS.
func BenchmarkTable2Startup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(experiments.Table2Config{
			Seed: uint64(i + 1), Samples: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 6*10)
}

// reportSamplesPerSec converts ns/op into the paper-meaningful
// throughput metric: independent simulation samples completed per host
// second across the whole benchmark run.
func reportSamplesPerSec(b *testing.B, samplesPerOp int) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(samplesPerOp*b.N)/sec, "samples/sec")
	}
}

// BenchmarkRunnerParallel measures the deterministic fan-out engine on
// the two sample-heavy experiments at increasing worker counts. On a
// multi-core host the workers=4 lines complete the same byte-identical
// tables several times faster than workers=1; on a single-core host the
// lines coincide (and bound the engine's overhead).
func BenchmarkRunnerParallel(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("fig1/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure1(experiments.Fig1Config{
					Seed: 1, Samples: fig1Samples, TaskSeconds: 1, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 12 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
			reportSamplesPerSec(b, 12*fig1Samples)
		})
		b.Run(fmt.Sprintf("table2/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table2(experiments.Table2Config{
					Seed: 1, Samples: 10, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 6 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
			reportSamplesPerSec(b, 6*10)
		})
	}
}

// BenchmarkAblationStaging regenerates ablation A: staging vs on-demand
// image transfer across working-set fractions.
func BenchmarkAblationStaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStaging(uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProxyCache regenerates ablation B: sequential boots
// sharing a master image through the host buffer cache.
func BenchmarkAblationProxyCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationProxyCache(uint64(i+1), 4, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduling regenerates ablation C: lottery vs WFQ vs
// stop/cont enforcement of a 70/30 split.
func BenchmarkAblationScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScheduling(uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMigration regenerates ablation D: migrate vs restart
// for an interrupted long job.
func BenchmarkAblationMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMigration(uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOverlay regenerates ablation F: overlay routing
// around a degraded direct path.
func BenchmarkAblationOverlay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationOverlay(uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPredictors regenerates ablation E: RPS predictor
// accuracy on synthetic host load.
func BenchmarkAblationPredictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPredictors(uint64(i+1), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacement measures the raw placement decision rate: one op
// runs each built-in policy's Pick over a 64-node candidate pool (the
// per-create / per-restore / per-balancer-tick hot path). samples/sec
// here is placement decisions per host second.
func BenchmarkPlacement(b *testing.B) {
	rng := sim.NewRNG(1)
	cands := make([]placement.Candidate, 64)
	for i := range cands {
		cands[i] = placement.Candidate{
			Node:      fmt.Sprintf("node%02d", i),
			Site:      "a",
			Slots:     1 + i%4,
			Speed:     1 + rng.Uniform(0, 1),
			Load:      rng.Uniform(0, 4),
			Predicted: rng.Uniform(0, 4),
		}
	}
	req := placement.Request{Session: "vm-bench", User: "bench", Image: "rh72"}
	policies := []placement.Placer{
		placement.LeastLoaded{}, placement.PredictedLoad{}, placement.Pack{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			if _, ok := p.Pick(req, cands); !ok {
				b.Fatalf("%s: no placement from a full pool", p.Name())
			}
		}
	}
	reportSamplesPerSec(b, len(policies))
}

// BenchmarkAblationBalance regenerates ablation I: the policy × balancer
// sweep over the skewed burst workload (1 sample x 6 arms per op, each
// arm a full nine-session grid run with telemetry and, in half the arms,
// the autonomic balancer migrating live sessions).
func BenchmarkAblationBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBalance(uint64(i+1), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 6)
}

// BenchmarkChunkedStage measures the content-addressed staging hot
// path: one op stages a 256 MB image cold (every chunk crosses the
// wire) and then re-stages it warm (every chunk hits the destination
// cache) between two LAN nodes sharing a chunk plane.
func BenchmarkChunkedStage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(uint64(i + 1))
		net := netsim.New(k)
		if err := net.BuildLAN("src", "dst"); err != nil {
			b.Fatal(err)
		}
		srcHost, err := hostos.New(k, hw.ReferenceMachine("src"))
		if err != nil {
			b.Fatal(err)
		}
		dstHost, err := hostos.New(k, hw.ReferenceMachine("dst"))
		if err != nil {
			b.Fatal(err)
		}
		plane := chunk.NewPlane(chunk.Config{})
		src := storage.NewStore(srcHost)
		src.SetChunkPlane(plane)
		dst := storage.NewStore(dstHost)
		dst.SetChunkPlane(plane)
		if err := src.Create("image", 256<<20); err != nil {
			b.Fatal(err)
		}
		for _, as := range []string{"cold", "warm"} {
			ok := false
			if err := gram.Stage(net, "src", src, "image", "dst", dst, as, func(err error) {
				if err != nil {
					b.Error(err)
				}
				ok = true
			}); err != nil {
				b.Fatal(err)
			}
			k.Run()
			if !ok {
				b.Fatalf("%s stage never finished", as)
			}
		}
	}
	reportSamplesPerSec(b, 2)
}

// BenchmarkDeltaCheckpoint regenerates ablation J: the chunk-size ×
// checkpoint-interval sweep (1 sample x 12 cells per op, each cell a
// staged-instantiation pair plus a supervised delta-checkpointed run).
func BenchmarkDeltaCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDelta(uint64(i+1), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 12)
}

// BenchmarkAblationPartition regenerates ablation H: the partition
// chaos sweep with fenced failover (2 samples x 6 cells per op, every
// run enforcing the no-lost-write / single-completion / convergence
// invariants).
func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPartition(uint64(i+1), 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	reportSamplesPerSec(b, 2*6)
}
