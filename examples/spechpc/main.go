// Spechpc reproduces the Table 1 experiment interactively: it runs the
// SPECseis- and SPECclimate-shaped workloads on the physical machine, on
// a VM with local state, and on a VM whose state lives on an image
// server across a wide-area network — then prints the overhead table and
// the virtual-file-system statistics that explain the PVFS column.
package main

import (
	"fmt"
	"os"

	"vmgrid/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spechpc:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("running the SPEChpc96-shaped macrobenchmarks (simulated)...")
	fmt.Println("workloads: SPECseis (16395s user, syscall-light),")
	fmt.Println("           SPECclimate (9304s user, memory-intensive)")
	fmt.Println()

	rows, err := experiments.Table1(7, 0)
	if err != nil {
		return err
	}
	fmt.Println(experiments.Table1Table(rows))

	fmt.Println("reading the table:")
	fmt.Println("  - the VM costs SPECseis ~1-2% (few privileged instructions to trap)")
	fmt.Println("  - SPECclimate pays ~4% for its shadow-page-table traffic")
	fmt.Println("  - moving VM state to a WAN image server adds <1% more:")
	fmt.Println("    the proxy cache turns 62000 guest reads into a few")
	fmt.Println("    thousand prefetched round trips")
	fmt.Println()
	fmt.Println("this is the paper's feasibility argument: compute-bound grid")
	fmt.Println("jobs lose almost nothing to the virtual machine abstraction.")
	return nil
}
