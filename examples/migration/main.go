// Migration demonstrates the paper's headline capability: an entire
// computing environment — guest OS, running process, task state —
// moving between physical hosts mid-computation while its data session
// stays attached.
//
// A long job starts on one compute host; a third of the way in, the
// resource owner wants the machine back, so the middleware suspends the
// VM, ships its memory image and copy-on-write diff across the LAN,
// and resumes it on a second host. The job finishes with no work lost.
package main

import (
	"errors"
	"fmt"
	"os"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "migration:", err)
		os.Exit(1)
	}
}

func run() error {
	g := core.NewGrid(1)
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "lan", Role: core.RoleFrontEnd},
		{Name: "host-a", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.1."},
		{Name: "host-b", Site: "lan", Role: core.RoleCompute, Slots: 1, DHCPPrefix: "10.0.2."},
		{Name: "data", Site: "lan", Role: core.RoleDataServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return err
		}
	}
	if err := g.Net().BuildLAN("front", "host-a", "host-b", "data"); err != nil {
		return err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	for _, n := range []string{"host-a", "host-b"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			return err
		}
	}
	if err := g.Node("data").CreateUserData("results", 512*hw.MB); err != nil {
		return err
	}

	// Start the session pinned to host-a with a placement hint, so the
	// owner-reclamation story below plays out on a known machine.
	var session *core.Session
	var sessErr error
	if _, err := g.CreateSession(core.SessionConfig{
		User: "bob", FrontEnd: "front", Image: "rh72",
		Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
		DataNode: "data", DataFile: "results",
	}, func(s *core.Session, err error) { session, sessErr = s, err },
		core.WithNodeHint("host-a")); err != nil {
		return err
	}
	if err := g.Kernel().RunUntil(sim.Time(5 * sim.Minute)); err != nil && !errors.Is(err, sim.ErrStalled) {
		return err
	}
	if sessErr != nil {
		return sessErr
	}
	fmt.Printf("t=%6.1fs  session ready on %s, addr %s\n",
		session.EventAt("ready").Seconds(), session.Node().Name(), session.Addr())

	// A 10-minute job with periodic output to the data server.
	job := guest.Workload{
		Name: "simulation", CPUSeconds: 600,
		PrivPerSec: 500, MemVirtPerSec: 300,
		Reads: 120, ReadBytes: 60 << 20, Mount: "data",
	}
	jobDone := false
	var jobResult guest.TaskResult
	if err := session.Run(job, func(r guest.TaskResult) {
		jobResult = r
		jobDone = true
	}); err != nil {
		return err
	}

	// 200 s in, the owner of host-a reclaims it: migrate to host-b.
	g.Kernel().After(200*sim.Second, func() {
		fmt.Printf("t=%6.1fs  host-a reclaimed by its owner; migrating mid-job\n",
			g.Kernel().Now().Seconds())
		if err := session.Migrate("host-b", func(err error) {
			if err != nil {
				fmt.Println("migrate failed:", err)
				return
			}
			fmt.Printf("t=%6.1fs  resumed on %s, new addr %s; data session re-attached\n",
				g.Kernel().Now().Seconds(), session.Node().Name(), session.Addr())
		}); err != nil {
			fmt.Println("migrate:", err)
		}
	})

	if err := g.Kernel().RunUntil(sim.Time(2 * sim.Hour)); err != nil && !errors.Is(err, sim.ErrStalled) && !jobDone {
		return err
	}
	if !jobDone {
		return fmt.Errorf("job never finished")
	}
	fmt.Printf("t=%6.1fs  job complete: %.0fs of work retired, %d reads, nothing lost\n",
		jobResult.End.Seconds(), jobResult.UserSeconds, jobResult.Reads)

	fmt.Println("\ntimeline:")
	for _, e := range session.Events() {
		fmt.Printf("  %8.2fs  %s\n", e.At.Seconds(), e.Step)
	}
	return nil
}
