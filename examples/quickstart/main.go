// Quickstart: the smallest end-to-end vmgrid program. It builds a
// two-node grid (a front end and a compute host on one LAN), installs a
// warm VM image, runs the Figure 3 session life cycle, executes a small
// job inside the guest, and prints the timeline.
package main

import (
	"errors"
	"fmt"
	"os"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/placement"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A grid fabric: deterministic simulation seeded with 42.
	g := core.NewGrid(42)

	// 2. Two machines on a LAN: a user-facing front end and a compute
	//    host that offers VM futures and hands out addresses.
	if _, err := g.AddNode(core.NodeConfig{
		Name: "front", Site: "campus", Role: core.RoleFrontEnd,
	}); err != nil {
		return err
	}
	if _, err := g.AddNode(core.NodeConfig{
		Name: "compute", Site: "campus", Role: core.RoleCompute,
		Slots: 1, DHCPPrefix: "10.0.0.",
	}); err != nil {
		return err
	}
	if err := g.Net().BuildLAN("front", "compute"); err != nil {
		return err
	}

	// 3. A warm VM image (disk + post-boot memory snapshot) archived on
	//    the compute host.
	img := storage.ImageInfo{
		Name: "rh72", OS: "redhat-7.2",
		DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB,
	}
	if err := g.Node("compute").InstallImage(img); err != nil {
		return err
	}

	// 4. The session life cycle: query for a future, locate the image,
	//    instantiate through the grid job manager, get an address. The
	//    least-loaded placement policy picks the host (with one compute
	//    node it has an easy job; see examples/multiuser for a pool).
	var session *core.Session
	var sessErr error
	if _, err := g.CreateSession(core.SessionConfig{
		User:     "alice",
		FrontEnd: "front",
		Image:    "rh72",
		Mode:     vmm.WarmRestore,    // Table 2's fast path
		Disk:     core.NonPersistent, // discardable COW diff
		Access:   core.AccessLocal,   // image already on the host
	}, func(s *core.Session, err error) {
		session, sessErr = s, err
	}, core.WithPlacer(placement.LeastLoaded{})); err != nil {
		return err
	}
	// The queue may legitimately drain once the fabric goes idle.
	if err := g.Kernel().RunUntil(sim.Time(10 * sim.Minute)); err != nil && !errors.Is(err, sim.ErrStalled) {
		return err
	}
	if sessErr != nil {
		return sessErr
	}

	fmt.Printf("session %s running on %s as %s, address %s\n",
		session.Name(), session.Node().Name(), session.LocalUser(), session.Addr())
	fmt.Printf("console: %s\n", session.Console())

	// 5. Run a job in the guest.
	var result guest.TaskResult
	if err := session.Run(guest.MicroTask(30), func(r guest.TaskResult) {
		result = r
	}); err != nil {
		return err
	}
	g.Kernel().Run()
	fmt.Printf("job finished: %.1fs elapsed for %.0fs of work (%.1f%% overhead)\n",
		result.Elapsed().Seconds(), result.UserSeconds,
		(result.Elapsed().Seconds()/result.UserSeconds-1)*100)

	// 6. The timeline of the Figure 3 steps.
	fmt.Println("life cycle:")
	for _, e := range session.Events() {
		fmt.Printf("  %8.2fs  %s\n", e.At.Seconds(), e.Step)
	}

	session.Shutdown()
	fmt.Println("session shut down; COW diff discarded")
	return nil
}
