// Adaptation demonstrates the paper's §3.2 "application perspective":
// applications adapt to resource conditions using the information
// service and load prediction. A monitor samples every compute host,
// fits autoregressive predictors, and publishes forecast load into the
// VM-future advertisements; arriving sessions then steer around a host
// that is about to be busy — even while it momentarily looks idle.
package main

import (
	"errors"
	"fmt"
	"os"

	"vmgrid/internal/core"
	"vmgrid/internal/hostos"
	"vmgrid/internal/hw"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/trace"
	"vmgrid/internal/vmm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptation:", err)
		os.Exit(1)
	}
}

func run() error {
	g := core.NewGrid(11)
	for _, cfg := range []core.NodeConfig{
		{Name: "front", Site: "lan", Role: core.RoleFrontEnd},
		{Name: "busy-host", Site: "lan", Role: core.RoleCompute, Slots: 4, DHCPPrefix: "10.0.1."},
		{Name: "calm-host", Site: "lan", Role: core.RoleCompute, Slots: 4, DHCPPrefix: "10.0.2."},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return err
		}
	}
	if err := g.Net().BuildLAN("front", "busy-host", "calm-host"); err != nil {
		return err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	for _, n := range []string{"busy-host", "calm-host"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			return err
		}
	}

	// busy-host carries strongly autocorrelated background load (a
	// desktop owner's compile-browse-compile rhythm).
	bg := trace.Synthetic(trace.Heavy, sim.NewRNG(4), 4096)
	lp := hostos.NewLoadProcess(g.Node("busy-host").Host(), "owner", bg)
	lp.Start()

	// The RPS loop: 1 s sensors, AR(8) forecasts, refreshed futures.
	monitor, err := g.StartMonitor(sim.Second)
	if err != nil {
		return err
	}
	defer monitor.Stop()

	// Warm up the predictors.
	if err := g.Kernel().RunUntil(sim.Time(2 * sim.Minute)); err != nil && !errors.Is(err, sim.ErrStalled) {
		return err
	}
	fmt.Printf("t=%5.0fs  forecasts: busy-host=%.2f calm-host=%.2f\n",
		g.Kernel().Now().Seconds(),
		monitor.PredictedLoad("busy-host"), monitor.PredictedLoad("calm-host"))

	// Resource discovery through the query language, like an adaptive
	// application would do it.
	rows, err := g.Info().QueryString(
		`select vm-future where slots >= 1 order by load limit 2`)
	if err != nil {
		return err
	}
	fmt.Println("discovery: futures ranked by predicted load:")
	for _, r := range rows {
		e := r.Entries[0]
		fmt.Printf("  %-10s predicted load %.2f\n", e.Name, e.Float("load"))
	}

	// Place three sessions; they should all steer to calm-host.
	for i := 0; i < 3; i++ {
		var sess *core.Session
		if _, err := g.CreateSession(core.SessionConfig{
			User: fmt.Sprintf("u%d", i), FrontEnd: "front", Image: "rh72",
			Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
		}, func(s *core.Session, err error) {
			if err != nil {
				fmt.Println("session failed:", err)
				return
			}
			sess = s
		}); err != nil {
			return err
		}
		if err := g.Kernel().RunUntil(g.Kernel().Now().Add(5 * sim.Minute)); err != nil && !errors.Is(err, sim.ErrStalled) {
			return err
		}
		if sess == nil {
			return errors.New("session did not come up")
		}
		fmt.Printf("t=%5.0fs  session %s placed on %s\n",
			g.Kernel().Now().Seconds(), sess.Name(), sess.Node().Name())
	}

	fmt.Println("\nthe middleware avoided the host whose load *forecast* was high,")
	fmt.Println("even at instants when its current load dipped — RPS-style")
	fmt.Println("prediction driving VM placement.")
	return nil
}
