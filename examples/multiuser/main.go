// Multiuser reproduces the paper's Figure 3 architecture: a service
// provider's front end multiplexes several grid users onto virtual
// back-ends drawn from a pool of physical servers. Each user gets a
// dedicated VM (their own root, their own address, root privileges if
// they want them) — the logical-user-account model — while the provider
// controls the physical machines with a resource-owner policy.
package main

import (
	"errors"
	"fmt"
	"os"

	"vmgrid/internal/core"
	"vmgrid/internal/guest"
	"vmgrid/internal/hw"
	"vmgrid/internal/placement"
	"vmgrid/internal/sched"
	"vmgrid/internal/sim"
	"vmgrid/internal/storage"
	"vmgrid/internal/vmm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multiuser:", err)
		os.Exit(1)
	}
}

func run() error {
	g := core.NewGrid(3)
	// The provider's pool: front end F, physical servers P1 and P2, an
	// image server I and a data server D (Figure 3's cast).
	for _, cfg := range []core.NodeConfig{
		{Name: "F", Site: "provider", Role: core.RoleFrontEnd},
		{Name: "P1", Site: "provider", Role: core.RoleCompute, Slots: 2, DHCPPrefix: "10.8.1."},
		{Name: "P2", Site: "provider", Role: core.RoleCompute, Slots: 2, DHCPPrefix: "10.8.2."},
		{Name: "I", Site: "provider", Role: core.RoleImageServer},
		{Name: "D", Site: "provider", Role: core.RoleDataServer},
	} {
		if _, err := g.AddNode(cfg); err != nil {
			return err
		}
	}
	if err := g.Net().BuildLAN("F", "P1", "P2", "I", "D"); err != nil {
		return err
	}
	img := storage.ImageInfo{Name: "rh72", OS: "redhat-7.2", DiskBytes: 2 * hw.GB, MemBytes: 128 * hw.MB}
	for _, n := range []string{"P1", "P2", "I"} {
		if err := g.Node(n).InstallImage(img); err != nil {
			return err
		}
	}
	for _, user := range []string{"A", "B", "C"} {
		if err := g.Node("D").CreateUserData("data-"+user, 256*hw.MB); err != nil {
			return err
		}
	}

	// Users A, B, C each get a session, spread across the pool by the
	// least-loaded placement policy; every user sees a dedicated
	// machine.
	users := []string{"A", "B", "C"}
	sessions := make(map[string]*core.Session, len(users))
	for _, user := range users {
		user := user
		if _, err := g.CreateSession(core.SessionConfig{
			User: user, FrontEnd: "F", Image: "rh72",
			Mode: vmm.WarmRestore, Disk: core.NonPersistent, Access: core.AccessLocal,
			DataNode: "D", DataFile: "data-" + user,
		}, func(s *core.Session, err error) {
			if err != nil {
				fmt.Printf("user %s: session failed: %v\n", user, err)
				return
			}
			sessions[user] = s
			fmt.Printf("t=%6.1fs  user %s -> VM %s on %s (addr %s, local account %s)\n",
				g.Kernel().Now().Seconds(), user, s.Name(), s.Node().Name(),
				s.Addr(), s.LocalUser())
		}, core.WithPlacer(placement.LeastLoaded{})); err != nil {
			return err
		}
	}
	if err := g.Kernel().RunUntil(sim.Time(10 * sim.Minute)); err != nil && !errors.Is(err, sim.ErrStalled) {
		return err
	}
	if len(sessions) != len(users) {
		return fmt.Errorf("only %d/%d sessions came up", len(sessions), len(users))
	}

	// The owner of P1 keeps 20% for themselves and caps any guest at
	// 70% — the §3.2 resource-control story, compiled from the
	// constraint language onto the host scheduler.
	p1 := g.Node("P1").Host()
	var vmProcs []string
	for _, proc := range p1.Procs() {
		if len(proc.Name()) > 4 && proc.Name()[:4] == "vmm:" {
			vmProcs = append(vmProcs, proc.Name())
		}
	}
	policy := "policy p1-owner\nreserve 20%\n"
	if len(vmProcs) > 0 {
		policy += "limit " + vmProcs[0] + " 70%\n"
	}
	parsed, err := sched.ParsePolicy(policy)
	if err != nil {
		return err
	}
	enf, err := sched.Compile(g.Kernel(), p1, parsed)
	if err != nil {
		return err
	}
	defer enf.Release()
	fmt.Printf("t=%6.1fs  owner policy applied on P1: %s\n",
		g.Kernel().Now().Seconds(), "reserve 20%, cap first guest at 70%")

	// Everyone computes concurrently; each user's I/O goes to their own
	// data file through their own proxy.
	type outcome struct {
		user string
		res  guest.TaskResult
	}
	var done []outcome
	for _, user := range users {
		user := user
		s := sessions[user]
		w := guest.Workload{
			Name: "job-" + user, CPUSeconds: 120,
			PrivPerSec: 400, Reads: 60, ReadBytes: 30 << 20, Mount: "data",
		}
		if err := s.Run(w, func(r guest.TaskResult) {
			done = append(done, outcome{user: user, res: r})
		}); err != nil {
			return err
		}
	}
	if err := g.Kernel().RunUntil(sim.Time(2 * sim.Hour)); err != nil && !errors.Is(err, sim.ErrStalled) && len(done) < len(users) {
		return err
	}

	fmt.Println("\nresults (same 120 s job for each user):")
	for _, o := range done {
		fmt.Printf("  user %s: %.1fs elapsed on %s\n",
			o.user, o.res.Elapsed().Seconds(), sessions[o.user].Node().Name())
	}
	fmt.Println("\nusers sharing a physical server slow each other down;")
	fmt.Println("the capped guest also pays the owner's policy — exactly the")
	fmt.Println("isolation-with-control the paper argues VMs give providers.")
	return nil
}
