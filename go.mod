module vmgrid

go 1.22
